// Command hipstr-fleet runs the multi-tenant fleet host: thousands of
// guest VMs admitted from a seeded open-loop Poisson traffic generator,
// forked from per-workload prototype snapshots (warm admission), and
// executed on a work-stealing worker pool under per-tenant policy
// (step quotas, migration probability, kill/respawn under attack).
//
// A health monitor watches the fleet while it runs: aggregate metrics are
// sampled into a rolling history ring every -health-interval, the
// built-in SLO/anomaly rules (respawn storms, attack waves, latency SLO
// burn, injector starvation) are evaluated against it, and each rule
// firing captures an incident flight-recorder bundle — triggering series
// window, recent trace events, top offender tenants, host config — kept
// in memory, served over HTTP, and (with -incident-dir) dumped as JSON
// artifacts.
//
// With -listen it serves the observability endpoints plus the fleet
// drill-down: /metrics carries fleet_* aggregates and per-tenant series,
// /tenants lists every guest, /tenants/{id} adds one guest's private
// telemetry snapshot, /history serves the metric history, /incidents the
// flight recorder, and /readyz reports ready only once every workload
// prototype is booted and warmed. cmd/hipstr-top renders all of it as a
// live terminal console.
//
// SIGINT drains gracefully: admission stops, workers finish their
// in-flight slices, and the final -metrics-out snapshot and incident
// artifacts are still written before exit.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"hipstr/internal/core"
	"hipstr/internal/fleet"
	"hipstr/internal/health"
	"hipstr/internal/obsrv"
	"hipstr/internal/telemetry"
	"hipstr/internal/workload"
)

func main() {
	workloads := flag.String("workloads", "libquantum", "comma-separated workload profiles tenants run")
	guests := flag.Int("guests", 2000, "number of tenants to admit")
	rate := flag.Float64("rate", 0, "target admissions/sec for the open-loop Poisson generator (0 = admit back-to-back)")
	workers := flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	slice := flag.Uint64("slice", fleet.DefaultSliceSteps, "step budget per dispatch slice")
	quota := flag.Uint64("quota", 200_000, "per-life step quota retiring a tenant (0 = run to completion)")
	seed := flag.Int64("seed", 1, "fleet seed rooting every deterministic stream")
	migrateProb := flag.Float64("migrate-prob", 1.0, "per-security-event migration probability (hipstr mode)")
	attackProb := flag.Float64("attack-prob", 0, "per-slice probability of an injected breach (exercises kill/respawn)")
	respawnLimit := flag.Int("respawn-limit", 3, "breach respawns before a tenant is killed for good")
	cacheQuota := flag.Uint("cache-quota", 0, "per-tenant code cache bytes per ISA (0 = engine default)")
	warmup := flag.Uint64("warmup", 50_000, "prototype warmup steps populating the shared unit cache")
	cold := flag.Bool("cold", false, "cold admission: boot every tenant from scratch (baseline vs warm forking)")
	mode := flag.String("mode", "hipstr", "psr | hipstr")
	listen := flag.String("listen", "", "serve observability + /tenants drill-down on this address")
	linger := flag.Bool("linger", false, "with -listen, keep serving after the drain until Ctrl-C")
	metricsOut := flag.String("metrics-out", "", "write the final aggregate metrics snapshot as JSON to this file")
	report := flag.Duration("report", 2*time.Second, "print a fleet status line this often (0 = none)")
	healthIv := flag.Duration("health-interval", 250*time.Millisecond, "health monitor sampling interval (0 = health engine off)")
	healthWindow := flag.Int("health-window", 0, "history ring size in samples (0 = default)")
	incidentDir := flag.String("incident-dir", "", "dump each incident flight-recorder bundle as JSON into this directory")
	settle := flag.Duration("incident-settle", 5*time.Second, "after the drain, keep sampling up to this long so open incidents can resolve")
	flag.Parse()

	cfg := fleet.DefaultConfig()
	cfg.Workers = *workers
	cfg.Seed = *seed
	cfg.ColdAdmission = *cold
	cfg.Policy.SliceSteps = *slice
	cfg.Policy.StepQuota = *quota
	cfg.Policy.MigrateProb = *migrateProb
	cfg.Policy.AttackProb = *attackProb
	cfg.Policy.RespawnLimit = *respawnLimit
	cfg.Policy.CacheQuotaBytes = uint32(*cacheQuota)
	cfg.Policy.WarmupSteps = *warmup
	switch *mode {
	case "psr":
		cfg.Mode = core.ModePSR
	case "hipstr":
		cfg.Mode = core.ModeHIPStR
	default:
		log.Fatalf("unknown -mode %q (want psr or hipstr)", *mode)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	h := fleet.NewHost(cfg)

	// The health engine: rolling history + built-in fleet rules + the
	// incident flight recorder, fed off the scrape-safe aggregate
	// registry by a dedicated sampling goroutine.
	var mon *health.Monitor
	if *healthIv > 0 || *incidentDir != "" {
		mon = health.NewMonitor(health.Config{
			WindowSamples: *healthWindow,
			Rules:         fleet.DefaultHealthRules(),
			Telemetry:     h.Telemetry(),
			Recorder: health.RecorderConfig{
				Events:  h.Telemetry().Trace.Tail,
				Tenants: h,
				Dir:     *incidentDir,
				HostConfig: map[string]any{
					"workloads": *workloads, "guests": *guests, "rate": *rate,
					"workers": cfg.Workers, "mode": *mode, "seed": *seed,
					"slice": *slice, "quota": *quota,
					"attack_prob": *attackProb, "respawn_limit": *respawnLimit,
					"cold": *cold,
				},
			},
		})
	}

	// Serve before the prototypes boot so /healthz answers immediately
	// and /readyz honestly reports the warmup window.
	var srv *obsrv.Server
	if *listen != "" {
		snapFn := func() (telemetry.Snapshot, bool) {
			return h.Telemetry().Snapshot(), true
		}
		opts := obsrv.Options{
			Snapshot: snapFn,
			Tracer:   h.Telemetry().Trace,
			Tenants:  h,
			Health: func() string {
				a := h.Aggregates()
				return fmt.Sprintf("fleet: %d active, %d/%d retired",
					a.Active, a.Completed+a.Killed, a.Admitted)
			},
			Ready: func() (bool, string) {
				if !h.Ready() {
					return false, "fleet prototypes still warming"
				}
				return true, "fleet prototypes warmed"
			},
		}
		if mon != nil {
			opts.History = mon.HistoryHandler()
			opts.Incidents = mon.Recorder.Handler()
		}
		var err error
		srv, err = obsrv.New(*listen, opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("observability: serving http://%s/ (metrics, tenants, history, incidents)\n", srv.Addr())
		go func() {
			if err := srv.Serve(); err != nil && err != http.ErrServerClosed {
				log.Printf("observability: %v", err)
			}
		}()
	}

	names := strings.Split(*workloads, ",")
	for i, n := range names {
		names[i] = strings.TrimSpace(n)
		if err := h.AddWorkload(names[i]); err != nil {
			log.Fatal(err)
		}
	}
	h.MarkReady()

	// The monitor samples on its own ticker: fleet collectors read only
	// atomics, so snapshotting off the worker goroutines is safe.
	monQuit := make(chan struct{})
	monDone := make(chan struct{})
	if mon != nil {
		iv := *healthIv
		if iv <= 0 {
			iv = 250 * time.Millisecond
		}
		go func() {
			defer close(monDone)
			tick := time.NewTicker(iv)
			defer tick.Stop()
			for {
				select {
				case <-tick.C:
					mon.ObserveNow(h.Telemetry().Snapshot())
				case <-monQuit:
					return
				}
			}
		}()
	}

	h.Start(ctx)
	var rep *time.Ticker
	if *report > 0 {
		rep = time.NewTicker(*report)
		done := make(chan struct{})
		defer close(done)
		go func() {
			for {
				select {
				case <-rep.C:
					a := h.Aggregates()
					open := 0
					if mon != nil {
						open = mon.OpenIncidents()
					}
					fmt.Printf("fleet: admitted %d  active %d (peak %d)  done %d  rps %.0f  p99 %.0fms  steals %d  respawns %d  incidents open %d\n",
						a.Admitted, a.Active, a.ActivePeak,
						a.Completed+a.Killed, a.RPS,
						a.LatencyP99us/1000, a.Steals, a.Respawns, open)
				case <-done:
					return
				}
			}
		}()
		defer rep.Stop()
	}

	// Open-loop admission: the schedule is fixed by the seed and rate; a
	// saturated host falls behind it rather than slowing it down.
	arr := workload.NewArrivals(*seed, *rate)
	start := time.Now()
	next := start
	admitted := 0
	for ; admitted < *guests && ctx.Err() == nil; admitted++ {
		next = next.Add(arr.Next())
		if d := time.Until(next); d > 0 {
			select {
			case <-time.After(d):
			case <-ctx.Done():
			}
			if ctx.Err() != nil {
				break
			}
		}
		if _, err := h.Admit(names[admitted%len(names)]); err != nil {
			log.Fatal(err)
		}
	}
	h.Close()
	if err := h.Wait(); err != nil {
		if admitted == *guests {
			log.Printf("fleet: %v", err)
		} else {
			fmt.Printf("interrupted: admission stopped at %d/%d, in-flight slices finished\n",
				admitted, *guests)
		}
	}

	// Let open incidents resolve (a storm's rate decays to zero once the
	// drain ends) so the final artifacts carry closed lifecycles; an
	// interrupt skips the settle.
	if mon != nil {
		if *settle > 0 && ctx.Err() == nil {
			deadline := time.Now().Add(*settle)
			for mon.OpenIncidents() > 0 && time.Now().Before(deadline) {
				time.Sleep(50 * time.Millisecond)
			}
		}
		close(monQuit)
		<-monDone
		mon.ObserveNow(h.Telemetry().Snapshot())
	}

	a := h.Aggregates()
	fmt.Printf("fleet complete: %d admitted, %d completed, %d killed in %v\n",
		a.Admitted, a.Completed, a.Killed, a.Elapsed.Round(time.Millisecond))
	fmt.Printf("  throughput: %.1f req/s  (%d steps, %d slices, %d steals)\n",
		a.RPS, a.Steps, a.Slices, a.Steals)
	fmt.Printf("  latency: p50 %.2fms  p99 %.2fms\n",
		a.LatencyP50us/1000, a.LatencyP99us/1000)
	fmt.Printf("  defense: %d breaches, %d respawns, %d migrations\n",
		a.Breaches, a.Respawns, a.Migrations)
	if mon != nil {
		opened, resolved, _ := mon.Recorder.Counts()
		fmt.Printf("  health: %d incidents opened, %d resolved, %d still open\n",
			opened, resolved, opened-resolved)
		if err := mon.Recorder.DumpErr(); err != nil {
			log.Printf("incident artifacts: %v", err)
		} else if *incidentDir != "" && opened > 0 {
			fmt.Printf("  incident bundles written to %s\n", *incidentDir)
		}
	}

	if *metricsOut != "" {
		buf, err := json.MarshalIndent(h.Telemetry().Snapshot(), "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*metricsOut, buf, 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("metrics written to %s\n", *metricsOut)
	}

	if srv != nil {
		if *linger && ctx.Err() == nil {
			fmt.Printf("drain complete; observability server still on http://%s/ (Ctrl-C to exit)\n", srv.Addr())
			<-ctx.Done()
		}
		sctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil {
			log.Printf("observability shutdown: %v", err)
		}
	}
}
