package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"
)

// Experiment is one registered driver: a named, self-describing unit the
// engine can run against a Suite. Run returns the driver's structured
// rows/series (the Result artifact payload).
type Experiment interface {
	Name() string
	Description() string
	Run(ctx context.Context, s *Suite) (any, error)
}

// funcExperiment adapts a driver closure to the Experiment interface.
type funcExperiment struct {
	name string
	desc string
	run  func(ctx context.Context, s *Suite) (any, error)
}

func (e funcExperiment) Name() string        { return e.name }
func (e funcExperiment) Description() string { return e.desc }
func (e funcExperiment) Run(ctx context.Context, s *Suite) (any, error) {
	return e.run(ctx, s)
}

// registry holds every experiment in evaluation order (the order the
// paper's figures are discussed and cmd/hipstr-bench runs them).
var registry []Experiment

// Register appends e to the run order. The built-in drivers register at
// init; external callers may add their own before running the engine.
func Register(e Experiment) { registry = append(registry, e) }

// All returns the registered experiments in run order.
func All() []Experiment {
	out := make([]Experiment, len(registry))
	copy(out, registry)
	return out
}

// ByName resolves one registered experiment.
func ByName(name string) (Experiment, bool) {
	for _, e := range registry {
		if e.Name() == name {
			return e, true
		}
	}
	return nil, false
}

// Select resolves a comma-separated name list (empty selects everything),
// preserving registry order.
func Select(names string) ([]Experiment, error) {
	if strings.TrimSpace(names) == "" {
		return All(), nil
	}
	want := map[string]bool{}
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		if _, ok := ByName(n); !ok {
			known := make([]string, len(registry))
			for i, e := range registry {
				known[i] = e.Name()
			}
			sort.Strings(known)
			return nil, fmt.Errorf("experiments: unknown experiment %q (have %s)",
				n, strings.Join(known, ", "))
		}
		want[n] = true
	}
	var out []Experiment
	for _, e := range registry {
		if want[e.Name()] {
			out = append(out, e)
		}
	}
	return out, nil
}

func register(name, desc string, run func(ctx context.Context, s *Suite) (any, error)) {
	Register(funcExperiment{name: name, desc: desc, run: run})
}

func init() {
	register("fig3", "Figure 3: classic ROP attack surface (obfuscated vs unobfuscated)",
		func(ctx context.Context, s *Suite) (any, error) { return s.Fig3(ctx) })
	register("fig4", "Figure 4: brute force attack surface (eliminated vs surviving)",
		func(ctx context.Context, s *Suite) (any, error) { return s.Fig4(ctx) })
	register("table2", "Table 2: Algorithm 1 brute-force simulation",
		func(ctx context.Context, s *Suite) (any, error) { return s.Table2(ctx) })
	register("fig5", "Figure 5: JIT-ROP attack surface on PSR and HIPStR",
		func(ctx context.Context, s *Suite) (any, error) { return s.Fig5(ctx) })
	register("fig6", "Figure 6: percentage of migration-safe basic blocks",
		func(ctx context.Context, s *Suite) (any, error) { return s.Fig6(ctx) })
	register("fig7", "Figure 7: entropy comparison across techniques",
		func(ctx context.Context, s *Suite) (any, error) { return s.Fig7(s.PSREntropyBits()), nil })
	register("fig8", "Figure 8: tailored-attack surface vs diversification probability",
		func(ctx context.Context, s *Suite) (any, error) { return s.Fig8(ctx) })
	register("fig9", "Figure 9: performance at PSR optimization levels",
		func(ctx context.Context, s *Suite) (any, error) { return s.Fig9(ctx) })
	register("fig10", "Figure 10: effect of additional stack memory",
		func(ctx context.Context, s *Suite) (any, error) { return s.Fig10(ctx) })
	register("fig11", "Figure 11: effect of RAT size on performance",
		func(ctx context.Context, s *Suite) (any, error) { return s.Fig11(ctx) })
	register("fig12", "Figure 12: migration overhead in microseconds",
		func(ctx context.Context, s *Suite) (any, error) { return s.Fig12(ctx) })
	register("fig13", "Figure 13: effect of code cache size on security migrations",
		func(ctx context.Context, s *Suite) (any, error) { return s.Fig13(ctx) })
	register("fig14", "Figure 14: performance comparison with Isomeron",
		func(ctx context.Context, s *Suite) (any, error) { return s.Fig14(ctx) })
	register("httpd", "§7.1 network-daemon (httpd) case study",
		func(ctx context.Context, s *Suite) (any, error) { return s.HTTPD(ctx) })
}
