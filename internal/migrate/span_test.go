package migrate_test

import (
	"math"
	"sync"
	"testing"

	"hipstr/internal/compiler"
	"hipstr/internal/dbt"
	"hipstr/internal/isa"
	"hipstr/internal/migrate"
	"hipstr/internal/telemetry"
	"hipstr/internal/testprogs"
)

// runTraced executes the call-chain workload under migration pressure
// with the given telemetry attached, returning the engine for its stats.
func runTraced(t *testing.T, tel *telemetry.Telemetry, seed int64) *migrate.Engine {
	t.Helper()
	bin, err := compiler.Compile(testprogs.CallChain(16))
	if err != nil {
		t.Fatal(err)
	}
	cfg := dbt.DefaultConfig()
	cfg.Seed = seed
	cfg.RATSize = 2
	cfg.MigrateProb = 1.0
	cfg.Telemetry = tel
	vm, err := dbt.New(bin, isa.X86, cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng := migrate.New()
	eng.BindTelemetry(tel)
	vm.Migrator = eng
	if tel != nil && tel.Spans != nil {
		vm.P.M.Spans = tel.Spans
	}
	if _, err := vm.Run(maxSteps); err != nil {
		t.Fatal(err)
	}
	if !vm.P.Exited {
		t.Fatal("workload did not exit")
	}
	return eng
}

// TestPhaseHistogramsAccountForCost pins the exact-decomposition
// contract: the migrate.phase.* histograms partition migrate.cost_us —
// their sums must agree within 1% (they agree exactly by construction;
// the tolerance only absorbs float summation order).
func TestPhaseHistogramsAccountForCost(t *testing.T) {
	tel := telemetry.New()
	eng := runTraced(t, tel, 1)
	if eng.Stats.Migrations == 0 {
		t.Fatal("no migrations occurred")
	}
	snap := tel.Reg.Snapshot()
	var costSum float64
	var costCount uint64
	for _, k := range []isa.Kind{isa.X86, isa.ARM} {
		h := snap.Histograms["migrate.cost_us.to_"+k.String()]
		costSum += h.Sum
		costCount += h.Count
	}
	if costCount != eng.Stats.Migrations {
		t.Fatalf("cost histograms hold %d observations, want %d migrations", costCount, eng.Stats.Migrations)
	}
	var phaseSum float64
	for _, name := range migrate.PhaseNames {
		h, ok := snap.Histograms["migrate.phase."+name]
		if !ok {
			t.Fatalf("missing migrate.phase.%s histogram", name)
		}
		if h.Count != eng.Stats.Migrations {
			t.Errorf("migrate.phase.%s count = %d, want %d", name, h.Count, eng.Stats.Migrations)
		}
		phaseSum += h.Sum
	}
	if costSum <= 0 {
		t.Fatalf("cost sum = %v, want > 0", costSum)
	}
	if rel := math.Abs(costSum-phaseSum) / costSum; rel > 0.01 {
		t.Fatalf("phase sum %v vs cost sum %v: off by %.2f%%, want <= 1%%", phaseSum, costSum, rel*100)
	}
	if rel := math.Abs(costSum-eng.Stats.TotalCostMicros) / costSum; rel > 0.01 {
		t.Fatalf("histogram cost %v vs engine total %v", costSum, eng.Stats.TotalCostMicros)
	}
}

// TestMigrationSpansDecomposeCost checks each recorded migration span
// tree: the phase children's modeled costs must account for >= 99% of
// their parent's end-to-end cost, and children must nest inside the
// parent's wall-clock interval.
func TestMigrationSpansDecomposeCost(t *testing.T) {
	tel := telemetry.New()
	tel.EnableSpans(0)
	eng := runTraced(t, tel, 1)
	if eng.Stats.Migrations == 0 {
		t.Fatal("no migrations occurred")
	}
	spans := tel.Spans.Spans()
	parents := map[uint64]telemetry.SpanEvent{}
	for _, s := range spans {
		if s.Track == "migrate" && s.ParentID == 0 {
			parents[s.ID] = s
		}
	}
	if uint64(len(parents)) != eng.Stats.Migrations {
		t.Fatalf("%d migrate parent spans, want %d", len(parents), eng.Stats.Migrations)
	}
	childCost := map[uint64]float64{}
	for _, s := range spans {
		if s.ParentID == 0 {
			continue
		}
		p, ok := parents[s.ParentID]
		if !ok {
			continue
		}
		if s.StartNS < p.StartNS || s.StartNS+s.DurNS > p.StartNS+p.DurNS {
			t.Errorf("child %q [%d,%d] outside parent [%d,%d]",
				s.Name, s.StartNS, s.StartNS+s.DurNS, p.StartNS, p.StartNS+p.DurNS)
		}
		childCost[s.ParentID] += s.CostUS
	}
	for id, p := range parents {
		if p.CostUS <= 0 {
			t.Errorf("migration span %d has no cost", id)
			continue
		}
		if cov := childCost[id] / p.CostUS; cov < 0.99 {
			t.Errorf("migration span %d: children cover %.1f%% of cost %v, want >= 99%%", id, cov*100, p.CostUS)
		}
	}
}

// TestSpanTracingRaceHammer runs 8 machines concurrently, all reporting
// into one shared span tracer and registry, under -race. Each VM owns
// its state; only the telemetry layer is shared, so this pins the
// tracer's concurrency contract end to end.
func TestSpanTracingRaceHammer(t *testing.T) {
	tel := telemetry.New()
	tel.EnableSpans(256)
	const machines = 8
	var wg sync.WaitGroup
	errs := make(chan error, machines)
	for i := 0; i < machines; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			bin, err := compiler.Compile(testprogs.CallChain(16))
			if err != nil {
				errs <- err
				return
			}
			cfg := dbt.DefaultConfig()
			cfg.Seed = seed
			cfg.RATSize = 2
			cfg.MigrateProb = 1.0
			cfg.Telemetry = tel
			vm, err := dbt.New(bin, isa.X86, cfg)
			if err != nil {
				errs <- err
				return
			}
			eng := migrate.New()
			eng.BindTelemetry(tel)
			vm.Migrator = eng
			vm.P.M.Spans = tel.Spans
			if _, err := vm.Run(maxSteps); err != nil {
				errs <- err
			}
		}(int64(i))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if tel.Spans.Completed() == 0 {
		t.Fatal("no spans recorded across 8 machines")
	}
}
