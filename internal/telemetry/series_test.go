package telemetry

import "testing"

// TestPublishSeries checks the experiment-series exporter: labeled points
// become gauges under the prefix, unlabeled points collapse one level.
func TestPublishSeries(t *testing.T) {
	r := NewRegistry()
	r.PublishSeries("experiments.fig9", []SeriesPoint{
		{Label: "libquantum", Fields: map[string]float64{"o1": 0.5, "o3": 0.9}},
		{Label: "mcf", Fields: map[string]float64{"o3": 0.8}},
		{Fields: map[string]float64{"mean": 0.85}},
	})
	s := r.Snapshot()
	want := map[string]float64{
		"experiments.fig9.libquantum.o1": 0.5,
		"experiments.fig9.libquantum.o3": 0.9,
		"experiments.fig9.mcf.o3":        0.8,
		"experiments.fig9.mean":          0.85,
	}
	for name, v := range want {
		if got := s.Gauges[name]; got != v {
			t.Fatalf("%s = %v, want %v", name, got, v)
		}
	}
	if len(s.Gauges) != len(want) {
		t.Fatalf("unexpected extra gauges: %v", s.Gauges)
	}
}

// TestPublishSeriesNilSafe checks the nil-safe Telemetry path.
func TestPublishSeriesNilSafe(t *testing.T) {
	var tel *Telemetry
	tel.PublishSeries("x", []SeriesPoint{{Label: "a", Fields: map[string]float64{"v": 1}}})
}

// TestNewWithTraceCap checks the capacity override and its zero default.
func TestNewWithTraceCap(t *testing.T) {
	if got := NewWithTraceCap(128).Trace.Cap(); got != 128 {
		t.Fatalf("cap = %d, want 128", got)
	}
	if got := NewWithTraceCap(0).Trace.Cap(); got != DefaultTraceCap {
		t.Fatalf("zero cap = %d, want default %d", got, DefaultTraceCap)
	}
	if got := NewWithTraceCap(-7).Trace.Cap(); got != DefaultTraceCap {
		t.Fatalf("negative cap = %d, want default %d", got, DefaultTraceCap)
	}
}
