// Package isomeron models the Isomeron baseline (Davi et al. 2015), the
// only other JIT-ROP defense the paper compares against (§2, Figure 14).
//
// Isomeron keeps two functionally equivalent program variants loaded and
// flips a coin at every function call and return to decide which variant
// executes next ("execution-path diversification"). Security-wise it
// contributes one bit of entropy per gadget; performance-wise its program
// shepherding instruments every call/return and defeats return-address
// prediction, which is where its overhead comes from — the paper quotes
// the original authors on branch-prediction-defeating overheads.
package isomeron

import (
	"math/rand"

	"hipstr/internal/perf"
)

// Config models Isomeron's runtime costs.
type Config struct {
	// DiversifyProb is the per-call/return probability of switching
	// variants (1.0 in the original system; Figure 14 sweeps it).
	DiversifyProb float64
	// ShepherdFrac is the always-on dynamic-instrumentation overhead of
	// Isomeron's program shepherding, as a fraction of base cycles. The
	// HIPStR paper quotes the Isomeron authors on their shepherding
	// rendering "CPU optimizations like branch prediction ineffective";
	// Isomeron's published baseline overhead is ~19%.
	ShepherdFrac float64
	// ShepherdCycles is the instrumentation cost charged at every call
	// and return (the diversifier coin flip + indirection table lookup).
	ShepherdCycles float64
	// SwitchCycles is the extra cost when execution actually switches
	// variants (cold code, new return-address mapping).
	SwitchCycles float64
	// RASDefeatPenalty models the broken return-address-stack prediction:
	// every return mispredicts with probability DiversifyProb.
	RASDefeatPenalty float64
	Seed             int64
}

// DefaultConfig mirrors the published system's behavior.
func DefaultConfig() Config {
	return Config{
		DiversifyProb:    1.0,
		ShepherdFrac:     0.19,
		ShepherdCycles:   14,
		SwitchCycles:     22,
		RASDefeatPenalty: 15,
		Seed:             1,
	}
}

// Result is a modeled Isomeron run derived from a native measurement.
type Result struct {
	BaseCycles     float64
	OverheadCycles float64
	Switches       uint64
	// Relative is performance relative to native (1.0 = parity).
	Relative float64
}

// Apply derives Isomeron's cost over the same work window as the native
// measurement m: every call and return pays shepherding, diversification
// flips pay the switch cost, and returns lose their predictability.
func (c Config) Apply(m perf.Measurement) Result {
	rng := rand.New(rand.NewSource(c.Seed))
	events := m.Counts.Calls + m.Counts.Returns
	var switches uint64
	for i := uint64(0); i < events; i++ {
		if rng.Float64() < c.DiversifyProb {
			switches++
		}
	}
	overhead := m.Cycles*c.ShepherdFrac +
		float64(events)*c.ShepherdCycles +
		float64(switches)*c.SwitchCycles +
		float64(m.Counts.Returns)*c.DiversifyProb*c.RASDefeatPenalty
	total := m.Cycles + overhead
	r := Result{
		BaseCycles:     m.Cycles,
		OverheadCycles: overhead,
		Switches:       switches,
	}
	if total > 0 {
		r.Relative = m.Cycles / total
	}
	return r
}

// CombineWithPSR models the PSR+Isomeron hybrid of §7: PSR's measured
// cycles plus Isomeron's shepherding over the same call/return counts.
func (c Config) CombineWithPSR(native, psrRun perf.Measurement) Result {
	iso := c.Apply(perf.Measurement{Cycles: psrRun.Cycles, Counts: psrRun.Counts})
	total := psrRun.Cycles + iso.OverheadCycles
	return Result{
		BaseCycles:     psrRun.Cycles,
		OverheadCycles: iso.OverheadCycles,
		Switches:       iso.Switches,
		Relative:       native.Cycles / total,
	}
}
