package isa

// DecodeBlock decodes a straight-line run of instructions from code, which
// holds the bytes at address addr, appending to dst and returning it. The
// run ends at the first block terminator (see Inst.EndsBlock), after max
// instructions, or when the remaining bytes no longer decode cleanly.
//
// A short block is not an error: the interpreter retries the failing PC
// through its slow path, which reproduces the exact fetch/decode fault the
// per-step loop would have raised. DecodeBlock returns an error only when
// not a single instruction decodes, so callers always either get progress
// or a diagnosable failure.
func DecodeBlock(k Kind, code []byte, addr uint32, dst []Inst, max int) ([]Inst, error) {
	off := 0
	for len(dst) < max && off < len(code) {
		in, err := Decode(k, code[off:], addr+uint32(off))
		if err != nil {
			if len(dst) > 0 {
				return dst, nil
			}
			return dst, err
		}
		dst = append(dst, in)
		off += int(in.Size)
		if in.EndsBlock() {
			break
		}
	}
	return dst, nil
}
