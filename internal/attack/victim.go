// Package attack implements the paper's threat model (§4) and attack suite
// (§6-7): classic ROP and return-into-libc chains delivered through a real
// stack-overflow vulnerability, the Algorithm 1 brute-force simulation,
// just-in-time code reuse against the live code cache, tailored
// diversification-bypass attacks, and the Blind-ROP respawn model.
//
// Attacks are executable: the victim program contains an unchecked copy
// from an attacker-controlled "network buffer" into a fixed-size stack
// buffer, and payloads are delivered by writing that buffer before the run
// — exactly a recv()-then-memcpy vulnerability. Success means the process
// performed execve("/bin/sh").
package attack

import (
	"bytes"
	"errors"
	"fmt"

	"hipstr/internal/compiler"
	"hipstr/internal/core"
	"hipstr/internal/dbt"
	"hipstr/internal/fatbin"
	"hipstr/internal/isa"
	"hipstr/internal/proc"
	"hipstr/internal/prog"
)

// NetBufWords is the attacker-controllable message capacity (the final
// word always holds the terminator). The protocol bound is what limits the
// overflow's reach — the vulnerable copy itself is unchecked.
const NetBufWords = 1025

// PayloadTerminator ends the vulnerable copy (the attack payload must not
// contain it — the "no NUL bytes in strcpy payloads" constraint).
const PayloadTerminator = 0x5AFE5AFE

// Victim is a compiled program with a stack-overflow vulnerability.
type Victim struct {
	Bin *fatbin.Binary
	// NetBuf is the data-section address of the attacker message buffer.
	NetBuf uint32
	// ShellStr is the address of the "/bin/sh" string.
	ShellStr uint32
	// Vuln is the vulnerable function's metadata.
	Vuln *fatbin.FuncMeta
	// BufOff is the canonical frame offset of the overflowed buffer.
	BufOff uint32
}

// BuildVictim compiles the victim: gadget-rich workers, the libc stubs,
// and a vuln() function that copies the network message into a 4-word
// stack buffer without a bounds check.
func BuildVictim(workers int) (*Victim, error) {
	mod := buildVictimModule(workers)
	bin, err := compiler.Compile(mod)
	if err != nil {
		return nil, err
	}
	v := &Victim{Bin: bin}
	for i, g := range victimGlobals(mod) {
		switch g.Name {
		case "netbuf":
			v.NetBuf = globalAddr(mod, i)
		case "shellstr":
			v.ShellStr = globalAddr(mod, i)
		}
	}
	v.Vuln = bin.Func("vuln")
	if v.Vuln == nil {
		return nil, fmt.Errorf("attack: victim lacks vuln()")
	}
	for s, fixed := range v.Vuln.FixedSlot {
		if fixed {
			v.BufOff = v.Vuln.SlotOff(s)
			break
		}
	}
	return v, nil
}

func victimGlobals(m *prog.Module) []prog.Global { return m.Globals }

func globalAddr(m *prog.Module, idx int) uint32 {
	// Mirrors the compiler's data layout: sequential word-aligned.
	off := uint32(0)
	for i := 0; i < idx; i++ {
		off = (off + m.Globals[i].Size + 3) &^ 3
	}
	return fatbin.DataBase + off
}

func buildVictimModule(workers int) *prog.Module {
	mb := prog.NewModule("victim")
	net := mb.Global("netbuf", 4*NetBufWords, nil)
	mb.Global("shellstr", 8, append([]byte("/bin/sh"), 0))

	// Gadget-rich workers (same shape as testprogs.GadgetRich).
	juicy := []int32{0x00C3C3FF, 0x19C3FF2D, -61, 0x7FC3FF00, 0x2DC32DC3}
	name := func(i int) string { return fmt.Sprintf("g%d", i) }
	for i := 0; i < workers; i++ {
		fb := mb.Func(name(i), 1)
		x := fb.Param(0)
		acc := fb.Const(juicy[i%len(juicy)])
		j := fb.Const(0)
		loop := fb.NewBlock()
		body := fb.NewBlock()
		exit := fb.NewBlock()
		fb.SetBlock(0)
		fb.Jmp(loop)
		fb.SetBlock(loop)
		fb.BrImm(isa.CondLT, j, int32(3+i%4), body, exit)
		fb.SetBlock(body)
		t := fb.Bin(prog.BinXor, acc, x)
		fb.BinTo(acc, prog.BinAdd, t, j)
		fb.BinImmTo(j, prog.BinAdd, j, 1)
		fb.Jmp(loop)
		fb.SetBlock(exit)
		if i+1 < workers {
			r := fb.Call(name(i+1), true, acc)
			fb.Ret(r)
		} else {
			fb.Ret(acc)
		}
	}

	// libc stubs.
	wr := mb.Func("libc_write", 1)
	wr.Ret(wr.Syscall(4, wr.Param(0)))
	ex := mb.Func("libc_execve", 3)
	ex.Ret(ex.Syscall(11, ex.Param(0), ex.Param(1), ex.Param(2)))

	// The vulnerability: an unchecked sentinel-terminated copy (strcpy
	// style) from the network buffer into a 4-word local buffer. Only two
	// loop-carried values (src and dst pointers) keep the copy's own
	// state in registers, like a real memcpy loop.
	vb := mb.Func("vuln", 0)
	var slots [4]int
	for i := range slots {
		slots[i] = vb.NewSlot()
	}
	buf := vb.SlotAddr(slots[0]) // address-taken: the buffer stays put
	src := vb.GlobalAddr(net, 0)
	dst := vb.Copy(buf)
	head := vb.NewBlock()
	body := vb.NewBlock()
	exit := vb.NewBlock()
	vb.SetBlock(0)
	vb.Jmp(head)
	vb.SetBlock(head)
	val := vb.Load(src, 0)
	vb.BrImm(isa.CondEQ, val, PayloadTerminator, exit, body)
	vb.SetBlock(body)
	v2 := vb.Load(src, 0)
	vb.Store(dst, 0, v2)
	vb.BinImmTo(src, prog.BinAdd, src, 4)
	vb.BinImmTo(dst, prog.BinAdd, dst, 4)
	vb.Jmp(head)
	vb.SetBlock(exit)
	vb.Ret(prog.NoVReg)

	// main: warm the workers, take the "request", return.
	fb := mb.Func("main", 0)
	w := fb.Const(1)
	r := fb.Call(name(0), true, w)
	fb.Call("libc_write", false, r)
	fb.Call("vuln", false)
	done := fb.Const(0)
	fb.Syscall(1, done)
	fb.Ret(done)
	return mb.MustBuild()
}

// Outcome classifies an attack attempt.
type Outcome int

const (
	// OutcomeShell: execve("/bin/sh") executed — the attack succeeded.
	OutcomeShell Outcome = iota
	// OutcomeCrash: the process faulted (bad address, divide, decode).
	OutcomeCrash
	// OutcomeKilled: the defense's software fault isolation terminated it.
	OutcomeKilled
	// OutcomeNoEffect: the program ran to a clean exit; the payload did
	// nothing attacker-visible.
	OutcomeNoEffect
)

func (o Outcome) String() string {
	switch o {
	case OutcomeShell:
		return "shell"
	case OutcomeCrash:
		return "crash"
	case OutcomeKilled:
		return "killed"
	default:
		return "no-effect"
	}
}

const attackMaxSteps = 10_000_000

// inject writes the payload (followed by the terminator) into the
// victim's network buffer.
func inject(memw interface {
	WriteWord(uint32, uint32) error
}, netbuf uint32, payload []uint32) error {
	if len(payload) > NetBufWords-1 {
		return fmt.Errorf("attack: payload of %d words exceeds the %d-word protocol limit",
			len(payload), NetBufWords-1)
	}
	for i, w := range payload {
		if w == PayloadTerminator {
			return fmt.Errorf("attack: payload word %d is the terminator", i)
		}
		if err := memw.WriteWord(netbuf+uint32(4*i), w); err != nil {
			return err
		}
	}
	return memw.WriteWord(netbuf+uint32(4*len(payload)), PayloadTerminator)
}

// shellSpawned checks whether any recorded execve used the shell string.
func (v *Victim) shellSpawned(p *proc.Process) bool {
	for _, ev := range p.Execves {
		var got [8]byte
		if err := p.Mem.Read(ev.PathPtr, got[:]); err == nil &&
			bytes.Equal(got[:7], []byte("/bin/sh")) {
			return true
		}
	}
	return false
}

// AttackNative delivers payload against an unprotected native process.
func (v *Victim) AttackNative(payload []uint32) (Outcome, error) {
	p, err := proc.New(v.Bin, isa.X86)
	if err != nil {
		return OutcomeNoEffect, err
	}
	if err := inject(p.Mem, v.NetBuf, payload); err != nil {
		return OutcomeNoEffect, err
	}
	_, runErr := p.Run(attackMaxSteps)
	if v.shellSpawned(p) {
		return OutcomeShell, nil
	}
	if runErr != nil {
		return OutcomeCrash, nil
	}
	return OutcomeNoEffect, nil
}

// AttackProtected delivers payload against a PSR- or HIPStR-protected
// process and returns the outcome plus the system for inspection.
func (v *Victim) AttackProtected(cfg core.Config, payload []uint32) (Outcome, *core.System, error) {
	s, err := core.New(v.Bin, cfg)
	if err != nil {
		return OutcomeNoEffect, nil, err
	}
	if err := inject(s.VM.P.Mem, v.NetBuf, payload); err != nil {
		return OutcomeNoEffect, nil, err
	}
	_, runErr := s.Run(attackMaxSteps)
	if v.shellSpawned(s.VM.P) {
		return OutcomeShell, s, nil
	}
	if runErr != nil {
		if isKill(runErr) {
			return OutcomeKilled, s, nil
		}
		return OutcomeCrash, s, nil
	}
	return OutcomeNoEffect, s, nil
}

func isKill(err error) bool { return errors.Is(err, dbt.ErrSecurityKill) }
