package telemetry

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestSpanNestingAndDomains drives a parent span with sequential children
// against a hand-cranked cycle source and checks both time domains: IDs
// nest (children carry the parent's ID), children start no earlier than
// the parent in both domains, and the children's cycle durations sum to
// no more than the parent's.
func TestSpanNestingAndDomains(t *testing.T) {
	st := NewSpanTracer(16)
	cycles := 100.0
	st.SetCycleSource(func() float64 { return cycles })

	parent := st.StartSpan("migrate", "migrate")
	parent.SetISA("arm")
	var childIDs []uint64
	for _, name := range []string{"rat-rebuild", "transform", "resume"} {
		c := parent.StartChild(name)
		childIDs = append(childIDs, c.ID())
		cycles += 50
		c.End()
	}
	cycles += 25
	parent.SetCostUS(620)
	parent.End()

	spans := st.Spans()
	if len(spans) != 4 {
		t.Fatalf("got %d spans, want 4", len(spans))
	}
	p := spans[3] // parent completes last
	if p.Name != "migrate" || p.ParentID != 0 {
		t.Fatalf("last completed span = %+v, want root migrate", p)
	}
	if p.ISA != "arm" || p.CostUS != 620 {
		t.Fatalf("parent attrs = %+v", p)
	}
	if p.StartCycles != 100 || p.DurCycles != 175 {
		t.Fatalf("parent cycles = start %v dur %v, want 100/175", p.StartCycles, p.DurCycles)
	}
	var childCycles float64
	for i, c := range spans[:3] {
		if c.ParentID != p.ID {
			t.Errorf("child %q parent = %d, want %d", c.Name, c.ParentID, p.ID)
		}
		if c.ID != childIDs[i] {
			t.Errorf("child %q id = %d, want %d", c.Name, c.ID, childIDs[i])
		}
		if c.ISA != "arm" {
			t.Errorf("child %q did not inherit ISA: %q", c.Name, c.ISA)
		}
		if c.StartCycles < p.StartCycles {
			t.Errorf("child %q starts at cycle %v, before parent %v", c.Name, c.StartCycles, p.StartCycles)
		}
		if c.StartNS < p.StartNS {
			t.Errorf("child %q starts at %dns, before parent %dns", c.Name, c.StartNS, p.StartNS)
		}
		if c.DurCycles != 50 {
			t.Errorf("child %q dur = %v cycles, want 50", c.Name, c.DurCycles)
		}
		childCycles += c.DurCycles
	}
	if childCycles > p.DurCycles {
		t.Fatalf("children cycles %v exceed parent %v", childCycles, p.DurCycles)
	}
}

// TestSpanInertWhenDisabled pins the zero-overhead-disabled contract: a
// nil tracer (the Telemetry default) yields inert spans whose whole
// lifecycle allocates nothing.
func TestSpanInertWhenDisabled(t *testing.T) {
	var st *SpanTracer
	tel := New()
	if tel.Spans != nil {
		t.Fatal("Telemetry must not enable spans by default")
	}
	allocs := testing.AllocsPerRun(100, func() {
		sp := st.StartSpan("dbt", "translate")
		sp.SetISA("x86")
		sp.SetDetail("never recorded")
		sp.SetCostUS(1)
		c := sp.StartChild("inner")
		c.End()
		sp.End()
		tsp := tel.StartSpan("migrate", "migrate")
		tsp.End()
	})
	if allocs != 0 {
		t.Fatalf("disabled span lifecycle allocates %v/op, want 0", allocs)
	}
	if st.Completed() != 0 || len(st.Spans()) != 0 || st.Cap() != 0 {
		t.Fatal("nil tracer accumulated state")
	}
}

// TestSpanAbandonedNeverRecorded pins the abandonment idiom: refusal
// paths drop spans without End, and nothing lands in the ring.
func TestSpanAbandonedNeverRecorded(t *testing.T) {
	st := NewSpanTracer(8)
	sp := st.StartSpan("machine", "invalidate")
	_ = sp
	if st.Completed() != 0 {
		t.Fatalf("abandoned span was recorded: %d completed", st.Completed())
	}
}

// TestSpanRingRotation overfills a small ring and checks the retained
// window is the most recent spans in completion order.
func TestSpanRingRotation(t *testing.T) {
	st := NewSpanTracer(4)
	for i := 0; i < 10; i++ {
		st.StartSpan("t", "s").End()
	}
	if st.Completed() != 10 {
		t.Fatalf("completed = %d, want 10", st.Completed())
	}
	spans := st.Spans()
	if len(spans) != 4 {
		t.Fatalf("ring holds %d, want 4", len(spans))
	}
	for i := 1; i < len(spans); i++ {
		if spans[i].ID <= spans[i-1].ID {
			t.Fatalf("ring out of completion order: %d after %d", spans[i].ID, spans[i-1].ID)
		}
	}
	if spans[3].ID != 10 {
		t.Fatalf("newest retained span id = %d, want 10", spans[3].ID)
	}
}

// TestWriteChromeTraceShape checks the exported document parses, spans
// appear in the wall-clock process (and in the guest-cycle process only
// with cycle data), and point events become instants.
func TestWriteChromeTraceShape(t *testing.T) {
	spans := []SpanEvent{
		{Kind: "span", ID: 1, Name: "migrate", Track: "migrate", StartNS: 1000, DurNS: 500000, StartCycles: 10, DurCycles: 400, CostUS: 620},
		{Kind: "span", ID: 2, ParentID: 1, Name: "resume", Track: "migrate", StartNS: 400000, DurNS: 100000},
	}
	events := []Event{{Seq: 1, Type: EvSecurity, ISA: "x86"}}
	var b strings.Builder
	if err := WriteChromeTrace(&b, spans, events); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			PID  int     `json:"pid"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	count := func(name, ph string, pid int) int {
		n := 0
		for _, e := range doc.TraceEvents {
			if e.Name == name && e.Ph == ph && e.PID == pid {
				n++
			}
		}
		return n
	}
	if n := count("migrate", "X", chromePIDWall); n != 1 {
		t.Errorf("migrate span in wall process: %d, want 1", n)
	}
	if n := count("migrate", "X", chromePIDCycles); n != 1 {
		t.Errorf("migrate span in cycle process: %d, want 1", n)
	}
	// The resume span has no cycle data and must stay off the cycle axis.
	if n := count("resume", "X", chromePIDCycles); n != 0 {
		t.Errorf("cycle-less span leaked into cycle process: %d", n)
	}
	if n := count("resume", "X", chromePIDWall); n != 1 {
		t.Errorf("resume span in wall process: %d, want 1", n)
	}
	if n := count(string(EvSecurity), "i", chromePIDWall); n != 1 {
		t.Errorf("security instant: %d, want 1", n)
	}
}

// TestSpanJSONLSinkDiscriminator checks every emitted line carries the
// "kind":"span" field tracestat keys on.
func TestSpanJSONLSinkDiscriminator(t *testing.T) {
	var b strings.Builder
	sink := NewSpanJSONLSink(&b)
	st := NewSpanTracer(4)
	st.AddSink(sink)
	st.StartSpan("dbt", "translate").End()
	st.StartSpan("migrate", "migrate").End()
	if sink.Written() != 2 || sink.Err() != nil {
		t.Fatalf("sink wrote %d, err %v", sink.Written(), sink.Err())
	}
	for _, line := range strings.Split(strings.TrimSpace(b.String()), "\n") {
		var probe struct {
			Kind string `json:"kind"`
		}
		if err := json.Unmarshal([]byte(line), &probe); err != nil || probe.Kind != "span" {
			t.Fatalf("line %q: kind %q, err %v", line, probe.Kind, err)
		}
	}
}

// BenchmarkSpanDisabled measures the instrumentation cost with tracing
// off — the common case on bench configs. Must stay allocation-free.
func BenchmarkSpanDisabled(b *testing.B) {
	var st *SpanTracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := st.StartSpan("dbt", "translate")
		sp.SetCostUS(1)
		sp.End()
	}
}
