// Command metricsdiff loads two metrics artifacts and prints their
// counters, gauges, and histogram quantiles side by side, with deltas.
// Typical use: compare the same workload under two configurations, or two
// revisions of the VM.
//
// Each input may be:
//
//   - a metrics snapshot (hipstr-run/hipstr-bench -metrics-out),
//
//   - one experiment result artifact (hipstr-bench -results-out), whose
//     rows are flattened into experiments.<name>.<label>.<field> gauges —
//     the same series names the live registry publishes,
//
//   - or a -results-out directory, merging every *.json artifact in it.
//
//     hipstr-run -workload mcf -metrics-out a.json
//     hipstr-run -workload mcf -rat 64 -metrics-out b.json
//     metricsdiff a.json b.json
//
//     hipstr-bench -quick -results-out before/
//     hipstr-bench -quick -results-out after/   # on the new revision
//     metricsdiff before/ after/
//
// Result rows reach the artifact as JSON objects, which do not preserve
// struct field order, so the per-row label is the first string-valued key
// in sorted key order. Artifact-vs-artifact diffs therefore always align;
// an artifact diffed against a live -metrics-out snapshot can disagree on
// label choice for rows with several string columns.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"hipstr"
)

func load(path string) (hipstr.MetricsSnapshot, error) {
	fi, err := os.Stat(path)
	if err != nil {
		return hipstr.MetricsSnapshot{}, err
	}
	if fi.IsDir() {
		return loadResultsDir(path)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return hipstr.MetricsSnapshot{}, err
	}
	return parseArtifact(path, data)
}

// parseArtifact sniffs the JSON shape: a metrics snapshot carries a
// "counters" object, a result artifact "name" + "rows".
func parseArtifact(path string, data []byte) (hipstr.MetricsSnapshot, error) {
	var probe map[string]json.RawMessage
	if err := json.Unmarshal(data, &probe); err != nil {
		return hipstr.MetricsSnapshot{}, fmt.Errorf("%s: %w", path, err)
	}
	if _, ok := probe["counters"]; ok {
		var s hipstr.MetricsSnapshot
		if err := json.Unmarshal(data, &s); err != nil {
			return s, fmt.Errorf("%s: %w", path, err)
		}
		return s, nil
	}
	if _, hasName := probe["name"]; hasName {
		if _, hasRows := probe["rows"]; hasRows {
			var res resultArtifact
			if err := json.Unmarshal(data, &res); err != nil {
				return hipstr.MetricsSnapshot{}, fmt.Errorf("%s: %w", path, err)
			}
			s := emptySnapshot()
			res.addTo(&s)
			return s, nil
		}
	}
	return hipstr.MetricsSnapshot{}, fmt.Errorf(
		"%s: neither a metrics snapshot (-metrics-out) nor an experiment result artifact (-results-out)", path)
}

// loadResultsDir merges every *.json result artifact in dir into one
// synthetic snapshot.
func loadResultsDir(dir string) (hipstr.MetricsSnapshot, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		return hipstr.MetricsSnapshot{}, err
	}
	if len(paths) == 0 {
		return hipstr.MetricsSnapshot{}, fmt.Errorf("%s: no *.json result artifacts", dir)
	}
	sort.Strings(paths)
	s := emptySnapshot()
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			return s, err
		}
		var res resultArtifact
		if err := json.Unmarshal(data, &res); err != nil {
			return s, fmt.Errorf("%s: %w", p, err)
		}
		if res.Name == "" {
			return s, fmt.Errorf("%s: not an experiment result artifact (no name)", p)
		}
		res.addTo(&s)
	}
	return s, nil
}

func emptySnapshot() hipstr.MetricsSnapshot {
	return hipstr.MetricsSnapshot{
		Counters: map[string]uint64{},
		Gauges:   map[string]float64{},
	}
}

// resultArtifact is the hipstr-bench -results-out schema (the experiment
// engine's Result struct).
type resultArtifact struct {
	Name    string  `json:"name"`
	Seconds float64 `json:"seconds"`
	Rows    any     `json:"rows"`
}

// addTo flattens the artifact's rows into the gauges the live registry
// publishes for the same experiment: experiments.<name>.<label>.<field>,
// plus the bench.seconds.<name> runtime gauge.
func (r resultArtifact) addTo(s *hipstr.MetricsSnapshot) {
	s.Gauges["bench.seconds."+r.Name] = r.Seconds
	prefix := "experiments." + r.Name
	rows, ok := r.Rows.([]any)
	if !ok {
		rows = []any{r.Rows}
	}
	for _, row := range rows {
		m, ok := row.(map[string]any)
		if !ok {
			continue
		}
		label, fields := flattenRow(m)
		base := prefix
		if label != "" {
			base += "." + sanitizeLabel(label)
		}
		for f, v := range fields {
			s.Gauges[base+"."+f] = v
		}
	}
}

// flattenRow mirrors the experiment engine's row flattening over decoded
// JSON: the first string-valued key (sorted order) labels the point and
// every numeric value — scalar, array element, or nested object field —
// becomes a field under its lowercased, dot-joined path.
func flattenRow(m map[string]any) (string, map[string]float64) {
	var label string
	fields := map[string]float64{}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		name := sanitizeLabel(strings.ToLower(k))
		switch v := m[k].(type) {
		case string:
			if label == "" {
				label = v
			}
		case bool:
			if v {
				fields[name] = 1
			} else {
				fields[name] = 0
			}
		case float64:
			fields[name] = v
		case []any:
			for i, e := range v {
				if f, ok := e.(float64); ok {
					fields[fmt.Sprintf("%s.%d", name, i)] = f
				}
			}
		case map[string]any:
			// Nested rows (structs or float-valued maps): their fields
			// arrive already lowercased and sanitized.
			_, nested := flattenRow(v)
			for fn, fv := range nested {
				fields[name+"."+fn] = fv
			}
		}
	}
	return label, fields
}

// sanitizeLabel matches the engine's metric-name cleaning: spaces, '+',
// '.', and '/' become '-'.
func sanitizeLabel(s string) string {
	return strings.Map(func(r rune) rune {
		switch r {
		case ' ', '+', '.', '/':
			return '-'
		}
		return r
	}, s)
}

// keys returns the sorted union of both maps' keys.
func keys[V any](a, b map[string]V) []string {
	seen := map[string]bool{}
	for k := range a {
		seen[k] = true
	}
	for k := range b {
		seen[k] = true
	}
	out := make([]string, 0, len(seen))
	for k := range seen {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func main() {
	all := flag.Bool("all", false, "include unchanged metrics")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: metricsdiff [-all] a.json b.json")
		os.Exit(2)
	}
	pa, pb := flag.Arg(0), flag.Arg(1)
	a, err := load(pa)
	if err != nil {
		log.Fatal(err)
	}
	b, err := load(pb)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("a: %s\nb: %s\n", pa, pb)

	var counters [][4]string
	for _, k := range keys(a.Counters, b.Counters) {
		av, bv := a.Counters[k], b.Counters[k]
		if av == bv && !*all {
			continue
		}
		counters = append(counters, [4]string{k,
			fmt.Sprintf("%d", av), fmt.Sprintf("%d", bv),
			fmt.Sprintf("%+d", int64(bv)-int64(av))})
	}
	if len(counters) > 0 {
		fmt.Printf("\n== counters ==\n%-44s %14s %14s %12s\n", "name", "a", "b", "delta")
		for _, row := range counters {
			fmt.Printf("%-44s %14s %14s %12s\n", row[0], row[1], row[2], row[3])
		}
	}

	var gauges [][4]string
	for _, k := range keys(a.Gauges, b.Gauges) {
		av, bv := a.Gauges[k], b.Gauges[k]
		if av == bv && !*all {
			continue
		}
		gauges = append(gauges, [4]string{k,
			fmt.Sprintf("%.6g", av), fmt.Sprintf("%.6g", bv),
			fmt.Sprintf("%+.6g", bv-av)})
	}
	if len(gauges) > 0 {
		fmt.Printf("\n== gauges ==\n%-44s %14s %14s %12s\n", "name", "a", "b", "delta")
		for _, row := range gauges {
			fmt.Printf("%-44s %14s %14s %12s\n", row[0], row[1], row[2], row[3])
		}
	}

	printed := false
	for _, k := range keys(a.Histograms, b.Histograms) {
		ah, bh := a.Histograms[k], b.Histograms[k]
		if ah.Count == bh.Count && ah.Sum == bh.Sum && !*all {
			continue
		}
		if !printed {
			fmt.Printf("\n== histograms ==\n")
			printed = true
		}
		fmt.Printf("%s\n", k)
		fmt.Printf("  %-7s a %14s  b %14s  delta %+d\n", "count",
			fmt.Sprintf("%d", ah.Count), fmt.Sprintf("%d", bh.Count),
			int64(bh.Count)-int64(ah.Count))
		fmt.Printf("  %-7s a %14.6g  b %14.6g  delta %+.6g\n", "mean", ah.Mean, bh.Mean, bh.Mean-ah.Mean)
		for _, q := range []float64{0.5, 0.9, 0.99} {
			aq, bq := ah.Quantile(q), bh.Quantile(q)
			fmt.Printf("  %-7s a %14.6g  b %14.6g  delta %+.6g\n",
				fmt.Sprintf("p%g", 100*q), aq, bq, bq-aq)
		}
	}
	if len(counters)+len(gauges) == 0 && !printed {
		fmt.Println("\nno differences.")
	}
}
