package workload_test

import (
	"reflect"
	"testing"

	"hipstr/internal/gadget"
	"hipstr/internal/isa"
	"hipstr/internal/proc"
	"hipstr/internal/workload"
)

const maxSteps = 80_000_000

func TestSuiteGeneratesAndCompiles(t *testing.T) {
	for _, p := range append(workload.Profiles(), workload.HTTPD()) {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			bin, err := workload.Compile(p)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			if len(bin.Funcs) != p.Funcs+3 {
				t.Fatalf("func count %d, want %d", len(bin.Funcs), p.Funcs+3)
			}
			for _, k := range isa.Kinds {
				if len(bin.Text[k]) < 1024 {
					t.Fatalf("%s text only %d bytes", k, len(bin.Text[k]))
				}
			}
		})
	}
}

func TestGenerationIsDeterministic(t *testing.T) {
	p, _ := workload.ProfileByName("libquantum")
	a, err := workload.Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := workload.Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range isa.Kinds {
		if !reflect.DeepEqual(a.Text[k], b.Text[k]) {
			t.Fatalf("%s text differs between generations", k)
		}
	}
}

// TestSmallBenchmarksRunToCompletion executes the two smallest benchmarks
// natively on both ISAs and cross-checks their behavior.
func TestSmallBenchmarksRunToCompletion(t *testing.T) {
	for _, name := range []string{"libquantum", "lbm"} {
		p, _ := workload.ProfileByName(name)
		p.WorkIters = 2 // keep the full run short for the test
		bin, err := workload.Compile(p)
		if err != nil {
			t.Fatal(err)
		}
		var exits [2]uint32
		var traces [2][]uint32
		for _, k := range isa.Kinds {
			pr, err := proc.New(bin, k)
			if err != nil {
				t.Fatal(err)
			}
			if err := pr.RunToExit(maxSteps); err != nil {
				t.Fatalf("%s on %s: %v", name, k, err)
			}
			exits[k] = pr.ExitCode
			traces[k] = pr.Trace
		}
		if exits[isa.X86] != exits[isa.ARM] {
			t.Fatalf("%s: exit mismatch %d vs %d", name, exits[isa.X86], exits[isa.ARM])
		}
		if !reflect.DeepEqual(traces[isa.X86], traces[isa.ARM]) {
			t.Fatalf("%s: trace mismatch", name)
		}
		if len(traces[isa.X86]) != 2 {
			t.Fatalf("%s: expected 2 progress writes, got %d", name, len(traces[isa.X86]))
		}
	}
}

// TestGadgetPopulationShape checks the suite-level properties the security
// evaluation depends on: substantial x86 surfaces, much smaller ARM
// surfaces, and unintentional gadgets on x86 only.
func TestGadgetPopulationShape(t *testing.T) {
	var x86Total, armTotal int
	for _, name := range []string{"gobmk", "lbm", "mcf"} {
		p, _ := workload.ProfileByName(name)
		bin, err := workload.Compile(p)
		if err != nil {
			t.Fatal(err)
		}
		gx := gadget.Mine(bin, isa.X86, 0)
		ga := gadget.Mine(bin, isa.ARM, 0)
		x86Total += len(gx)
		armTotal += len(ga)
		sx := gadget.Summarize(gx)
		if sx.Unaligned == 0 {
			t.Errorf("%s: no unintentional x86 gadgets", name)
		}
		t.Logf("%s: x86 %d (%d unaligned) vs arm %d", name, len(gx), sx.Unaligned, len(ga))
	}
	if x86Total < 2*armTotal {
		t.Fatalf("x86 surface (%d) should far exceed ARM (%d)", x86Total, armTotal)
	}
	if x86Total < 1000 {
		t.Fatalf("suite gadget population too small for the evaluation: %d", x86Total)
	}
}

// TestCodeHeavyProfilesHaveMoreGadgets mirrors the paper's observation
// that the attack surface tracks code volume (gobmk/httpd largest).
func TestCodeHeavyProfilesHaveMoreGadgets(t *testing.T) {
	count := func(name string) int {
		p, _ := workload.ProfileByName(name)
		bin, err := workload.Compile(p)
		if err != nil {
			t.Fatal(err)
		}
		return len(gadget.Mine(bin, isa.X86, 0))
	}
	gobmk := count("gobmk")
	lbm := count("lbm")
	httpd := count("httpd")
	if gobmk <= lbm {
		t.Fatalf("gobmk (%d) should exceed lbm (%d)", gobmk, lbm)
	}
	if httpd <= lbm {
		t.Fatalf("httpd (%d) should exceed lbm (%d)", httpd, lbm)
	}
}
