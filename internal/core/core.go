// Package core assembles the full HIPStR defense (paper §3.5): a pair of
// PSR virtual machines, one per ISA of the heterogeneous CMP, coupled with
// the PSR-aware cross-ISA migration engine and the two migration policies —
// performance-driven phase migration and probabilistic security migration
// on code-cache misses.
package core

import (
	"fmt"

	"hipstr/internal/dbt"
	"hipstr/internal/fatbin"
	"hipstr/internal/isa"
	"hipstr/internal/migrate"
	"hipstr/internal/telemetry"
)

// Mode selects which layers of the defense are active.
type Mode int

const (
	// ModePSR runs Program State Relocation on a single ISA (no
	// migration) — susceptible to JIT-ROP by itself.
	ModePSR Mode = iota
	// ModeHIPStR runs the combined defense: PSR on both ISAs plus
	// probabilistic heterogeneous-ISA migration on security events.
	ModeHIPStR
)

func (m Mode) String() string {
	if m == ModeHIPStR {
		return "HIPStR"
	}
	return "PSR"
}

// Config configures a protected process.
type Config struct {
	Mode      Mode
	StartISA  isa.Kind
	DBT       dbt.Config
	Migration migrate.Policy
}

// DefaultConfig returns the paper's main HIPStR configuration.
func DefaultConfig() Config {
	return Config{
		Mode:      ModeHIPStR,
		StartISA:  isa.X86,
		DBT:       dbt.DefaultConfig(),
		Migration: migrate.DefaultPolicy(),
	}
}

// System is a process protected by HIPStR (or plain PSR).
type System struct {
	Bin    *fatbin.Binary
	VM     *dbt.VM
	Engine *migrate.Engine
	Cfg    Config

	tel      *telemetry.Telemetry
	respawns int
}

// New boots bin under the configured defense. All subsystems — the PSR
// virtual machines, the migration engine, and (when attached) the timing
// model — report into one shared telemetry instance, taken from
// cfg.DBT.Telemetry or created fresh.
func New(bin *fatbin.Binary, cfg Config) (*System, error) {
	if cfg.Mode == ModePSR {
		cfg.DBT.MigrateProb = 0
	}
	if cfg.DBT.Telemetry == nil {
		cfg.DBT.Telemetry = telemetry.NewWithTraceCap(cfg.DBT.TraceCap)
	}
	tel := cfg.DBT.Telemetry
	vm, err := dbt.New(bin, cfg.StartISA, cfg.DBT)
	if err != nil {
		return nil, fmt.Errorf("core: boot: %w", err)
	}
	s := &System{Bin: bin, VM: vm, Cfg: cfg, tel: tel}
	if cfg.Mode == ModeHIPStR {
		s.Engine = &migrate.Engine{Policy: cfg.Migration}
		s.Engine.BindTelemetry(tel)
		vm.Migrator = s.Engine
	}
	return s, nil
}

// Telemetry returns the system-wide metrics registry and event tracer.
func (s *System) Telemetry() *telemetry.Telemetry { return s.tel }

// Run executes up to maxSteps instructions.
func (s *System) Run(maxSteps uint64) (uint64, error) { return s.VM.Run(maxSteps) }

// Exited reports process termination.
func (s *System) Exited() bool { return s.VM.P.Exited }

// ExitCode returns the exit status.
func (s *System) ExitCode() uint32 { return s.VM.P.ExitCode }

// Active returns the ISA currently executing.
func (s *System) Active() isa.Kind { return s.VM.Active() }

// RequestPhaseMigration schedules a performance-policy migration at the
// next migration-safe boundary (paper §5.2: "whenever an application phase
// change ... demands migration to another core").
func (s *System) RequestPhaseMigration() {
	if s.Engine != nil {
		s.VM.PendingMigration = true
		s.tel.Emit(telemetry.Event{
			Type: telemetry.EvPolicy, ISA: s.Active().String(),
			Detail: "phase-migration-request",
		})
	}
}

// Respawn models the crash/reboot scenario of §5.3: the worker re-spawns
// with freshly randomized relocation maps and empty code caches on both
// ISAs. Memory mutations from the previous life persist (matching a
// re-spawned worker thread sharing its parent's image is *not* modeled:
// the paper's PSR re-randomizes, which is the property captured here).
func (s *System) Respawn() error {
	s.respawns++
	s.tel.Emit(telemetry.Event{
		Type: telemetry.EvRespawn, ISA: s.Cfg.StartISA.String(),
		Detail: fmt.Sprintf("respawn %d", s.respawns),
	})
	s.tel.Gauge("core.respawns").Set(float64(s.respawns))
	return s.VM.Respawn(s.Cfg.StartISA, s.Cfg.DBT.Seed+int64(s.respawns)*0x9E3779B9)
}

// Respawns reports how many times the process was re-spawned.
func (s *System) Respawns() int { return s.respawns }

// Snapshot freezes the system's VM state into a shareable image. The
// system keeps running; forks materialize new Systems from the image at
// O(dirty pages) instead of booting from scratch. Fleet hosts snapshot one
// booted prototype per binary and admit tenants via Fork.
type Snapshot struct {
	vm  *dbt.VMSnapshot
	cfg Config
}

// Snapshot captures the system's current state copy-on-write.
func (s *System) Snapshot() *Snapshot {
	return &Snapshot{vm: s.VM.Snapshot(), cfg: s.Cfg}
}

// assemble wraps a forked VM into a full System: fresh migration engine
// (its cumulative stats belong to one guest's lifetime) bound to the
// fork's telemetry, wired as the VM's migrator under the original mode.
func (sn *Snapshot) assemble(vm *dbt.VM) *System {
	cfg := sn.cfg
	cfg.DBT = vm.Cfg
	sys := &System{Bin: vm.Bin, VM: vm, Cfg: cfg, tel: vm.Telemetry()}
	if cfg.Mode == ModeHIPStR {
		sys.Engine = &migrate.Engine{Policy: cfg.Migration}
		sys.Engine.BindTelemetry(sys.tel)
		vm.Migrator = sys.Engine
	}
	return sys
}

// Fork materializes a new System continuing exactly where the snapshot was
// taken: registers, translated code, RAT contents, and relocation maps all
// carry over (memory aliased copy-on-write). fc.Telemetry defaults to a
// private instance per fork.
func (sn *Snapshot) Fork(fc dbt.ForkConfig) (*System, error) {
	vm, err := sn.vm.Fork(fc)
	if err != nil {
		return nil, fmt.Errorf("core: fork: %w", err)
	}
	return sn.assemble(vm), nil
}

// Respawn materializes a fresh guest from the snapshot under a new PSR
// seed — the §5.3 kill+respawn breach response at O(dirty pages): memory
// forks copy-on-write from the snapshot while relocation maps and code
// caches re-randomize from scratch.
func (sn *Snapshot) Respawn(newSeed int64, fc dbt.ForkConfig) (*System, error) {
	vm, err := sn.vm.Respawn(sn.cfg.StartISA, newSeed, fc)
	if err != nil {
		return nil, fmt.Errorf("core: respawn fork: %w", err)
	}
	return sn.assemble(vm), nil
}

// SecurityEvents reports the number of code-cache-miss security events.
func (s *System) SecurityEvents() uint64 { return s.VM.Stats.SecurityEvents }

// Migrations reports how many migrations occurred.
func (s *System) Migrations() uint64 { return s.VM.Stats.Migrations }
