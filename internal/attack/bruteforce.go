package attack

import (
	"math"
	"sort"

	"hipstr/internal/fatbin"
	"hipstr/internal/gadget"
	"hipstr/internal/isa"
	"hipstr/internal/psr"
)

// BruteForceResult carries one Table 2 row plus the Figure 4 surface
// split.
type BruteForceResult struct {
	Benchmark     string
	TotalGadgets  int
	ViableGadgets int     // Figure 4 "surviving" (viable for brute force)
	AvgParams     float64 // Table 2: randomizable params (avg)
	EntropyBits   float64 // Table 2: entropy per gadget
	// AttemptsNoBias / AttemptsBias are the expected brute-force attempt
	// counts for the four-register execve exploit of Algorithm 1, without
	// and with the register-bias optimization.
	AttemptsNoBias float64
	AttemptsBias   float64
	// ChainFound reports whether Algorithm 1 completed a four-gadget
	// chain at all.
	ChainFound bool
}

// execveRegs are the registers Algorithm 1 must populate for the
// execve(2) system call (Figure 1).
var execveRegs = []isa.Reg{isa.EAX, isa.EBX, isa.ECX, isa.EDX}

// SimulateBruteForce runs Algorithm 1 of the paper against bin: mine every
// gadget, evaluate its concrete effect, greedily assemble the four-gadget
// shellcode chain (register by register, never clobbering established
// state, preferring gadgets whose randomized return-address offset is
// lowest), and compute the expected attempt count.
//
// The attempt model follows §6: the attacker must brute force three
// independent unknowns per gadget — which gadget transforms usefully under
// the unseen relocation (X terms), the relocated position of the chained
// return address within the f-byte frame (Y terms), and the relocated
// position of the data, mitigated by spraying one register's value per
// frame (contributing the n = f compounding factor between stages):
//
//	B = Y[0] + f·X[0] + n·f·Y[1] + n·f²·X[1] + ... + n³·f⁴·X[3]
func SimulateBruteForce(bin *fatbin.Binary, cfg psr.Config, seed int64) BruteForceResult {
	res := BruteForceResult{Benchmark: bin.Module}
	gs := gadget.Mine(bin, isa.X86, 0)
	res.TotalGadgets = len(gs)
	an := gadget.NewAnalyzer(bin)
	rnd := psr.NewRandomizer(seed, cfg)

	type viable struct {
		g    *gadget.Gadget
		e    gadget.Effect
		aRet float64 // randomized return-address offset A(g)
	}
	var pool []viable
	var paramSum float64
	maps := map[int]*psr.Map{}
	for i := range gs {
		g := &gs[i]
		e := an.NativeEffect(g)
		if !e.Viable() {
			continue
		}
		fn := bin.FuncAt(isa.X86, g.Addr)
		if fn == nil {
			continue
		}
		m, ok := maps[fn.Index]
		if !ok {
			m = rnd.Build(fn, isa.X86)
			maps[fn.Index] = m
		}
		pool = append(pool, viable{g: g, e: e, aRet: float64(m.RetOff)})
		paramSum += float64(e.Params())
	}
	res.ViableGadgets = len(pool)
	if len(pool) == 0 {
		return res
	}
	res.AvgParams = paramSum / float64(len(pool))

	f := float64(cfg.RandSpace())
	res.EntropyBits = res.AvgParams * math.Log2(f)

	// Algorithm 1: populate one register at a time; candidates ordered by
	// randomized return-address offset (line 8: minimize A(g)).
	sort.Slice(pool, func(i, j int) bool { return pool[i].aRet < pool[j].aRet })
	established := map[isa.Reg]bool{}
	var X []float64 // 1-based candidate index of each chosen gadget
	var Y []float64 // A(g) of each chosen gadget
	for _, r := range execveRegs {
		found := false
		for idx, c := range pool {
			if _, pops := c.e.Pops[r]; !pops {
				continue
			}
			clobbers := false
			for _, cr := range c.e.Clobbered {
				if established[cr] {
					clobbers = true
				}
			}
			for pr := range c.e.Pops {
				if pr != r && established[pr] {
					clobbers = true
				}
			}
			if clobbers {
				continue
			}
			established[r] = true
			X = append(X, float64(idx+1))
			Y = append(Y, c.aRet)
			found = true
			break
		}
		if !found {
			// No gadget populates this register without clobbering: the
			// attacker must brute force the full pool for this stage.
			X = append(X, float64(len(pool)))
			Y = append(Y, f)
		}
	}
	res.ChainFound = len(established) == len(execveRegs)

	// B = Y[0] + f·X[0] + n·f·Y[1] + n·f²·X[1] + ... (n = f: the sprayed
	// data positions compound between stages).
	n := f
	b := 0.0
	for k := 0; k < len(X); k++ {
		nk := math.Pow(n, float64(k))
		fk := math.Pow(f, float64(k))
		b += nk*fk*Y[k] + nk*fk*f*X[k]
	}
	res.AttemptsNoBias = b

	// Register bias relocates at least three registers to other registers:
	// for those parameters the search space per guess shrinks to the
	// register file, but a biased gadget is likelier to keep computing in
	// registers, enlarging the viable pool the attacker must sweep. Net
	// effect (as in Table 2): same order of magnitude, shifted by the
	// ratio of the mixed parameter space.
	regFile := 7.0
	biasFrac := 3.0 / math.Max(res.AvgParams, 3.0)
	fBias := math.Exp((1-biasFrac)*math.Log(f) + biasFrac*math.Log(regFile*math.Sqrt(f)))
	bBias := 0.0
	for k := 0; k < len(X); k++ {
		nk := math.Pow(n, float64(k))
		fk := math.Pow(fBias, float64(k))
		bBias += nk*fk*Y[k] + nk*fk*fBias*X[k]
	}
	res.AttemptsBias = bBias
	return res
}
