// bruteforce walks through the paper's §6 analysis on one benchmark: mine
// the gadget population, run Algorithm 1 to build the four-gadget execve
// chain, and report the expected attempt counts — then contrast load-time
// randomization (which falls to Blind-ROP-style incremental probing) with
// PSR's run-time re-randomization.
package main

import (
	"fmt"
	"log"

	"hipstr"
	"hipstr/internal/attack"
)

func main() {
	bin, err := hipstr.CompileWorkload("gobmk")
	if err != nil {
		log.Fatal(err)
	}
	gs := hipstr.MineGadgets(bin, hipstr.X86)
	fmt.Printf("gobmk: %d x86 gadgets mined by Galileo\n", len(gs))

	res := hipstr.SimulateBruteForce(bin, 1)
	fmt.Printf("viable for brute force: %d (%.1f%%)\n",
		res.ViableGadgets, 100*float64(res.ViableGadgets)/float64(res.TotalGadgets))
	fmt.Printf("randomizable parameters per gadget: %.2f (avg)\n", res.AvgParams)
	fmt.Printf("entropy per gadget: %.0f bits\n", res.EntropyBits)
	fmt.Printf("expected attempts for the 4-gadget execve chain:\n")
	fmt.Printf("  without register bias: %.2e\n", res.AttemptsNoBias)
	fmt.Printf("  with register bias:    %.2e\n", res.AttemptsBias)
	fmt.Printf("chain assembled by Algorithm 1: %v\n\n", res.ChainFound)

	// At one attempt per nanosecond, how long is that?
	years := res.AttemptsNoBias / 1e9 / 3.15e7
	fmt.Printf("at 1 attempt/ns: %.2e years — \"computationally infeasible,\n"+
		"even on future processors targeted at exascale computing\" (§7.1)\n\n", years)

	// Blind-ROP: why run-time re-randomization matters.
	m := attack.BlindROPModel{EntropyBits: 13, Unknowns: 6}
	fmt.Printf("Blind-ROP with 6 unknowns of 13 bits each:\n")
	fmt.Printf("  load-time randomization (state survives respawn): %.0f probes\n",
		m.LoadTimeAttempts())
	fmt.Printf("  run-time PSR (re-randomized on every respawn):    %.2e probes\n",
		m.RunTimeAttempts())
}
