package gadget

import (
	"errors"
	"sort"

	"hipstr/internal/dbt"
	"hipstr/internal/fatbin"
	"hipstr/internal/isa"
	"hipstr/internal/machine"
	"hipstr/internal/mem"
	"hipstr/internal/psr"
)

// Pattern values: stack slots are filled with recognizable attacker data,
// registers with sentinels, so the post-execution state reveals exactly
// which registers a gadget populates from the stack.
const (
	patternBase  = 0xA77AC000 // stack slot i holds patternBase+i
	sentinelBase = 0xC1EA0000 // register r starts as sentinelBase+r<<8
	// PatternSlots is the number of attacker-controlled stack words: the
	// brute-force attacker of §6 sprays entire stack frames, so the
	// window covers a full small frame.
	PatternSlots = 2048
)

// PatternSlot returns the slot index encoded in an attacker-pattern value,
// or -1.
func PatternSlot(v uint32) int {
	if v >= patternBase && v < patternBase+PatternSlots {
		return int(v - patternBase)
	}
	return -1
}

// Effect is the observable result of executing a gadget against an
// attacker-controlled stack.
type Effect struct {
	Faulted    bool
	DidSyscall bool
	SyscallNum uint32
	// Pops maps registers to the stack slot whose attacker value they
	// received.
	Pops map[isa.Reg]int
	// Clobbered lists registers whose sentinel was destroyed without
	// receiving attacker data.
	Clobbered []isa.Reg
	// NextSlot is the stack slot that supplied the final control-transfer
	// target (the next gadget address in a chain), or -1.
	NextSlot int
	// SPDelta is the net stack-pointer movement.
	SPDelta   int32
	MemWrites int
}

// Viable reports whether the gadget populates at least one register with
// attacker-controlled data and terminates into an attacker-controlled
// transfer — the paper's viability criterion for brute force.
func (e Effect) Viable() bool {
	return !e.Faulted && len(e.Pops) > 0 && e.NextSlot >= 0
}

// SameOutcome reports whether two effects perform the same attacker-
// relevant computation: identical register population and chain slot.
func (e Effect) SameOutcome(o Effect) bool {
	if e.Faulted != o.Faulted || e.NextSlot != o.NextSlot || len(e.Pops) != len(o.Pops) {
		return false
	}
	for r, s := range e.Pops {
		if o.Pops[r] != s {
			return false
		}
	}
	return true
}

// Params counts the randomizable parameters of a gadget under PSR
// (Algorithm 1): each popped register, each clobbered register, and the
// chained return-address location are independently relocated.
func (e Effect) Params() int {
	p := len(e.Pops) + len(e.Clobbered) + 1 // +1 for the return location
	return p
}

// Analyzer executes gadgets concretely against a disposable image of the
// binary.
type Analyzer struct {
	bin *fatbin.Binary
	mem *mem.Memory
	m   *machine.Machine

	stackTop uint32
}

// scratchStack is where the analyzer parks the attacker stack.
const (
	scratchBase = 0xA0000000
	scratchSize = 0x10000
)

// NewAnalyzer builds a native-execution analyzer for bin.
func NewAnalyzer(bin *fatbin.Binary) *Analyzer {
	ram := mem.New()
	bin.Load(ram, 1<<20, 1<<20)
	ram.Map("attack-stack", scratchBase, scratchSize, mem.PermRW)
	a := &Analyzer{bin: bin, mem: ram, stackTop: scratchBase + scratchSize - 0x1000}
	a.m = machine.New(isa.X86, ram)
	return a
}

// prepare resets machine state and rewrites the attacker pattern.
func (a *Analyzer) prepare(k isa.Kind) uint32 {
	a.m.State = machine.State{ISA: k}
	for r := 0; r < 16; r++ {
		a.m.Regs[r] = sentinelBase + uint32(r)<<8
	}
	sp := a.stackTop - 4*PatternSlots
	for i := 0; i < PatternSlots; i++ {
		a.mem.WriteWord(sp+uint32(4*i), patternBase+uint32(i))
	}
	a.m.SetSP(sp)
	return sp
}

// observe extracts the effect from post-run state.
func (a *Analyzer) observe(e *Effect, k isa.Kind, read func(isa.Reg) (uint32, bool)) {
	e.Pops = make(map[isa.Reg]int)
	for r := 0; r < isa.NumRegs(k); r++ {
		reg := isa.Reg(r)
		if reg == isa.StackReg(k) || (k == isa.ARM && reg >= isa.SP) {
			continue
		}
		v, ok := read(reg)
		if !ok {
			continue
		}
		if slot := PatternSlot(v); slot >= 0 {
			e.Pops[reg] = slot
		} else if v != sentinelBase+uint32(r)<<8 {
			e.Clobbered = append(e.Clobbered, reg)
		}
	}
	sort.Slice(e.Clobbered, func(i, j int) bool { return e.Clobbered[i] < e.Clobbered[j] })
}

// NativeEffect executes the gadget without PSR and reports its effect —
// what the attacker expects the gadget to do.
func (a *Analyzer) NativeEffect(g *Gadget) Effect {
	e := Effect{NextSlot: -1}
	sp0 := a.prepare(g.ISA)
	a.m.PC = g.Addr
	done := false
	a.m.OnControl = func(m *machine.Machine, in *isa.Inst, kind machine.ControlKind, target, retAddr uint32) (uint32, uint32, error) {
		if kind.IsIndirect() {
			if slot := PatternSlot(target); slot >= 0 {
				e.NextSlot = slot
			}
			done = true
			m.Halted = true
		}
		return target, retAddr, nil
	}
	a.m.Syscall = func(m *machine.Machine, vector int32) error {
		e.DidSyscall = true
		e.SyscallNum = m.Regs[isa.EAX]
		if m.ISA == isa.ARM {
			e.SyscallNum = m.Regs[isa.R0]
		}
		return nil
	}
	a.m.OnExec = func(m *machine.Machine, in *isa.Inst) {
		if in.Op == isa.OpStore || (in.Op == isa.OpMov && in.Dst.Kind == isa.OpdMem) {
			e.MemWrites++
		}
	}
	for steps := 0; steps < g.Len+4 && !done; steps++ {
		if err := a.m.Step(); err != nil {
			e.Faulted = true
			break
		}
		if a.m.Halted {
			break
		}
	}
	if !done && !e.Faulted {
		// Never reached its indirect transfer (e.g. a mid-gadget halt).
		e.Faulted = true
	}
	e.SPDelta = int32(a.m.SP() - sp0)
	a.observe(&e, g.ISA, func(r isa.Reg) (uint32, bool) { return a.m.Regs[r], true })
	return e
}

// TranslatedEffect executes the gadget under the given PSR virtual
// machine's relocation maps and reports the architectural effect as the
// next gadget would observe it (registers read through the relocation
// map). The VM's process state is used as scratch; callers should use a
// dedicated analysis VM.
func TranslatedEffect(vm *dbt.VM, g *Gadget) Effect {
	e := Effect{NextSlot: -1}
	k := g.ISA
	fn := vm.Bin.FuncAt(k, g.Addr)
	if fn == nil {
		e.Faulted = true
		return e
	}
	pmap := vm.MapOf(fn)[k]
	cacheAddr, err := vm.EnsureTranslated(k, g.Addr)
	if err != nil {
		e.Faulted = true
		return e
	}
	m := vm.P.M
	m.State = machine.State{ISA: k}
	vm.P.Exited = false
	for r := 0; r < 16; r++ {
		m.Regs[r] = sentinelBase + uint32(r)<<8
	}
	// Scatter the sentinels to their relocated homes so the gadget's
	// reads observe a coherent relocated state.
	spTop := uint32(fatbin.StackTop - 0x1000)
	sp := spTop - 4*PatternSlots
	for i := 0; i < PatternSlots; i++ {
		vm.P.Mem.WriteWord(sp+uint32(4*i), patternBase+uint32(i))
	}
	m.SetSP(sp)
	if err := vm.ApplyReRelocate(pmap); err != nil {
		e.Faulted = true
		return e
	}
	m.PC = cacheAddr
	// Run until the gadget's transfer escapes: a security event whose
	// target is attacker data kills the process (non-text target), which
	// is exactly the signal we want.
	budget := uint64(g.Len*20 + 60)
	_, runErr := vm.Run(budget)
	if runErr != nil {
		if errors.Is(runErr, dbt.ErrSecurityKill) {
			if slot := PatternSlot(vm.LastEventTarget); slot >= 0 {
				e.NextSlot = slot
			} else {
				e.Faulted = true
			}
		} else {
			e.Faulted = true
		}
	} else {
		// Still running or halted without an escaping transfer.
		e.Faulted = true
	}
	// Read the architectural register state through the relocation map.
	read := func(r isa.Reg) (uint32, bool) {
		l := pmap.LocOfReg(r)
		if l.Kind == psr.LocReg {
			return m.Regs[l.Reg], true
		}
		v, err := vm.P.Mem.ReadWord(m.SP() + uint32(l.Off))
		if err != nil {
			return 0, false
		}
		return v, true
	}
	e.SPDelta = int32(m.SP() - sp)
	a := Analyzer{} // reuse observe
	a.observe(&e, k, read)
	return e
}
