// httpd reproduces the paper's §7.1 case study on the network-daemon
// workload: mine its attack surface, measure how much of it PSR
// obfuscates, run the Algorithm 1 brute-force analysis, and show the
// JIT-ROP funnel after heterogeneous-ISA migration gating.
package main

import (
	"context"
	"log"
	"os"

	"hipstr"
)

func main() {
	s := hipstr.NewQuickExperiments(os.Stdout)
	if _, err := s.HTTPD(context.Background()); err != nil {
		log.Fatal(err)
	}
}
