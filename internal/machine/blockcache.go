package machine

import (
	"fmt"

	"hipstr/internal/isa"
)

// BlockCap is the maximum number of instructions predecoded into one basic
// block. Blocks normally end at a control transfer; straight-line runs
// longer than this are split, which only costs an extra cache lookup at the
// seam.
const BlockCap = 64

// maxCachedBlocks bounds each per-ISA block map. Real working sets are a
// few hundred blocks; the cap only matters for adversarial workloads (a
// JIT-ROP sweep decoding at every byte offset) where it keeps the cache
// from outgrowing the program it simulates.
const maxCachedBlocks = 1 << 14

// Block is a predecoded straight-line run of instructions. Insts[0].Addr is
// the block's start PC; execution falls off the end when the terminator is
// a not-taken branch or the block was split at BlockCap.
type Block struct {
	Insts []isa.Inst
}

// BlockCacheStats is a snapshot of the interpreter block cache counters.
type BlockCacheStats struct {
	Hits          uint64 // block dispatches served from cache
	Misses        uint64 // block refills (fetch + decode)
	Invalidations uint64 // whole-cache drops on code-generation change
	Blocks        int    // blocks currently cached (both ISAs)
}

// HitRatio returns Hits/(Hits+Misses), or 0 before any dispatch.
func (s BlockCacheStats) HitRatio() float64 {
	if t := s.Hits + s.Misses; t > 0 {
		return float64(s.Hits) / float64(t)
	}
	return 0
}

// blockCache memoizes decoded basic blocks per ISA. It is keyed by start PC
// within each ISA map and guarded by the memory's code generation: any
// write into executable pages, any protection change that touches execute
// permission, and any DBT code-cache flush bumps the generation, and the
// next dispatch drops every cached block. Whole-cache invalidation is
// deliberately coarse — generation bumps are rare (loader setup, respawn
// re-randomization, translation evictions, SMC attacks) while dispatches
// number in the millions, so the hot path pays one integer compare and the
// rare path re-decodes a handful of blocks.
//
// Blocks are keyed per ISA because PSR migration retargets m.ISA mid-run
// (always at a control transfer, hence always at a block boundary), and the
// same address range decodes differently under each ISA's twin text.
type blockCache struct {
	blocks [2]map[uint32]*Block // indexed by isa.Kind
	gen    uint64               // mem.CodeGen value the cache is valid for
	win    []byte               // reusable fetch window for refills

	hits, misses, invalidations uint64
}

// BlockStats returns a snapshot of the machine's block-cache counters.
func (m *Machine) BlockStats() BlockCacheStats {
	bc := &m.blocks
	return BlockCacheStats{
		Hits:          bc.hits,
		Misses:        bc.misses,
		Invalidations: bc.invalidations,
		Blocks:        len(bc.blocks[isa.X86]) + len(bc.blocks[isa.ARM]),
	}
}

// invalidate drops every cached block and adopts the new generation. An
// empty cache adopting its first generation is not counted — only actual
// drops of decoded blocks are invalidations.
func (bc *blockCache) invalidate(gen uint64) {
	if bc.blocks[0] != nil || bc.blocks[1] != nil {
		// Old blocks are left for the GC rather than reused: observers
		// (the timing model's branch predictor, tracers) may still hold
		// *isa.Inst pointers into them across calls.
		bc.blocks[0] = nil
		bc.blocks[1] = nil
		bc.invalidations++
	}
	bc.gen = gen
}

// lookup returns the cached block starting at pc under ISA k, or nil.
func (bc *blockCache) lookup(k isa.Kind, pc uint32) *Block {
	if blk := bc.blocks[k]; blk != nil {
		if b, ok := blk[pc]; ok {
			bc.hits++
			return b
		}
	}
	return nil
}

// refill fetches and decodes a new block at m.PC and caches it. Fetch and
// decode failures are wrapped exactly as the per-step slow path wraps them,
// so callers see identical errors whether or not the cache is in play.
func (bc *blockCache) refill(m *Machine) (*Block, error) {
	if bc.win == nil {
		bc.win = make([]byte, BlockCap*MaxInstLen)
	}
	n, err := m.Mem.FetchInto(m.PC, bc.win)
	if err != nil {
		return nil, fmt.Errorf("machine: fetch at %#x: %w", m.PC, err)
	}
	insts, err := isa.DecodeBlock(m.ISA, bc.win[:n], m.PC, nil, BlockCap)
	if err != nil {
		return nil, fmt.Errorf("machine: decode at %#x: %w", m.PC, err)
	}
	bc.misses++
	b := &Block{Insts: insts}
	tab := bc.blocks[m.ISA]
	if tab == nil || len(tab) >= maxCachedBlocks {
		tab = make(map[uint32]*Block)
		bc.blocks[m.ISA] = tab
	}
	tab[m.PC] = b
	return b, nil
}
