// Command hipstr-top is a live terminal console for a running hipstr-run
// or hipstr-fleet observability server: it polls /stats.json, /history,
// /incidents, /tenants and /readyz and renders fleet gauges,
// sparkline-style metric history, open incidents, and the top-K offender
// tenants — plain ANSI, no dependencies, one process to watch a fleet.
//
// Counter series render as per-second rates when prefixed with "rate:"
// in -series (the default list uses it for respawns and breaches);
// unprefixed series plot raw sampled values. Series the server does not
// know are skipped, so one default list works against both a fleet host
// and a single VM.
//
// Usage:
//
//	hipstr-top [-addr 127.0.0.1:9121] [-interval 2s] [-series a,rate:b]
//	           [-n 10] [-width 48] [-once]
//
// -once renders a single frame without clearing the screen (scripts, CI).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"hipstr/internal/health"
	"hipstr/internal/obsrv"
	"hipstr/internal/telemetry"
)

// defaultSeries covers both hosts: fleet gauges and rates when a fleet is
// attached, DBT/translation pressure when watching a single VM.
const defaultSeries = "fleet.active,fleet.rps,rate:fleet.respawns,rate:fleet.breaches,fleet.injector_depth," +
	"rate:dbt.security_events,rate:machine.blockcache.evicted"

func main() {
	addr := flag.String("addr", "127.0.0.1:9121", "observability server address (hipstr-fleet/hipstr-run -listen)")
	interval := flag.Duration("interval", 2*time.Second, "poll/refresh interval")
	series := flag.String("series", defaultSeries, "comma-separated history series to sparkline (prefix rate: for per-second deltas)")
	topN := flag.Int("n", 10, "top-K tenants to list")
	width := flag.Int("width", 48, "sparkline width in samples")
	once := flag.Bool("once", false, "render one frame and exit (no screen clearing)")
	flag.Parse()

	cl := &client{base: "http://" + *addr, http: &http.Client{Timeout: 5 * time.Second}}
	specs := parseSeries(*series)

	render := func() {
		frame, err := cl.frame(specs, *topN, *width)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hipstr-top: %v\n", err)
			if *once {
				os.Exit(1)
			}
			return
		}
		if !*once {
			fmt.Print("\x1b[H\x1b[2J") // home + clear
		}
		os.Stdout.WriteString(renderFrame(frame, *width, *topN))
	}

	render()
	if *once {
		return
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	tick := time.NewTicker(*interval)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			render()
		case <-sig:
			fmt.Println()
			return
		}
	}
}

// seriesSpec is one sparkline request: a history series, optionally
// rendered as a per-second rate.
type seriesSpec struct {
	name string
	rate bool
}

func parseSeries(s string) []seriesSpec {
	var out []seriesSpec
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		spec := seriesSpec{name: part}
		if rest, ok := strings.CutPrefix(part, "rate:"); ok {
			spec = seriesSpec{name: rest, rate: true}
		}
		out = append(out, spec)
	}
	return out
}

// frame is everything one refresh renders, fetched up front so a slow
// endpoint can't tear the display mid-draw.
type frame struct {
	addr      string
	now       time.Time
	ready     string
	stats     telemetry.Snapshot
	statsOK   bool
	history   map[string][]health.Point // by spec label
	specs     []seriesSpec
	incidents *health.IncidentList
	tenants   []obsrv.TenantInfo
}

// client fetches the observability endpoints, treating 404s (no fleet,
// no health engine) as absent sections rather than errors.
type client struct {
	base string
	http *http.Client
}

func (c *client) getJSON(path string, into any) (bool, error) {
	resp, err := c.http.Get(c.base + path)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound || resp.StatusCode == http.StatusServiceUnavailable {
		io.Copy(io.Discard, resp.Body)
		return false, nil
	}
	if resp.StatusCode != http.StatusOK {
		return false, fmt.Errorf("%s: %s", path, resp.Status)
	}
	return true, json.NewDecoder(resp.Body).Decode(into)
}

func (c *client) frame(specs []seriesSpec, topN, width int) (*frame, error) {
	f := &frame{addr: c.base, now: time.Now(), specs: specs, history: map[string][]health.Point{}}

	if resp, err := c.http.Get(c.base + "/readyz"); err != nil {
		return nil, err // liveness probe: if this fails, nothing else will work
	} else {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		f.ready = strings.TrimSpace(strings.SplitN(string(body), "\n", 2)[0])
	}

	ok, err := c.getJSON("/stats.json", &f.stats)
	if err != nil {
		return nil, err
	}
	f.statsOK = ok

	if len(specs) > 0 {
		names := make([]string, 0, len(specs))
		for _, s := range specs {
			names = append(names, s.name)
		}
		var q health.QueryResult
		// Rate series need one extra sample to difference away.
		if ok, err := c.getJSON("/history?series="+strings.Join(names, ",")+
			fmt.Sprintf("&points=%d", width+1), &q); err != nil {
			return nil, err
		} else if ok {
			bySeries := map[string][]health.Point{}
			for _, s := range q.Series {
				bySeries[s.Name] = s.Points
			}
			for _, spec := range specs {
				f.history[spec.label()] = spec.transform(bySeries[spec.name], width)
			}
		}
	}

	var il health.IncidentList
	if ok, err := c.getJSON("/incidents", &il); err != nil {
		return nil, err
	} else if ok {
		f.incidents = &il
	}

	var tl struct {
		Count   int                `json:"count"`
		Tenants []obsrv.TenantInfo `json:"tenants"`
	}
	if ok, err := c.getJSON("/tenants", &tl); err != nil {
		return nil, err
	} else if ok {
		f.tenants = tl.Tenants
	}
	return f, nil
}

func (s seriesSpec) label() string {
	if s.rate {
		return s.name + "/s"
	}
	return s.name
}

// transform windows the raw points to width samples, differencing
// counters into per-second rates (reset-safe) when the spec asks for it.
func (s seriesSpec) transform(pts []health.Point, width int) []health.Point {
	if s.rate {
		var out []health.Point
		for i := 1; i < len(pts); i++ {
			dt := float64(pts[i].TimeNS-pts[i-1].TimeNS) / 1e9
			if dt <= 0 {
				continue
			}
			d := pts[i].Value - pts[i-1].Value
			if d < 0 { // counter reset
				d = pts[i].Value
			}
			out = append(out, health.Point{TimeNS: pts[i].TimeNS, Value: d / dt})
		}
		pts = out
	}
	if len(pts) > width {
		pts = pts[len(pts)-width:]
	}
	return pts
}

// sparkline renders values into block-element glyphs scaled min..max.
// A flat series renders mid-height so "constant 1000" and "constant 0"
// don't look identical to an empty line.
func sparkline(pts []health.Point, width int) string {
	const ramp = "▁▂▃▄▅▆▇█"
	if len(pts) == 0 {
		return strings.Repeat(" ", width)
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, p := range pts {
		lo = math.Min(lo, p.Value)
		hi = math.Max(hi, p.Value)
	}
	var b strings.Builder
	for _, p := range pts {
		i := 3 // flat series midpoint
		if hi > lo {
			i = int((p.Value - lo) / (hi - lo) * 7)
		}
		b.WriteString(string([]rune(ramp)[i]))
	}
	for n := len(pts); n < width; n++ {
		b.WriteByte(' ')
	}
	return b.String()
}

// renderFrame lays the frame out as one string (pure, unit-testable).
func renderFrame(f *frame, width, topN int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "hipstr-top — %s — %s — %s\n\n",
		f.addr, f.now.Format("15:04:05"), f.ready)

	if f.statsOK {
		g, c := f.stats.Gauges, f.stats.Counters
		if _, fleet := g["fleet.active"]; fleet {
			fmt.Fprintf(&b, "fleet   active %v (peak %v)  workers %v  rps %.1f  p99 %.1fms  injector %v\n",
				fmtN(g["fleet.active"]), fmtN(g["fleet.active_peak"]), fmtN(g["fleet.workers"]),
				g["fleet.rps"], g["fleet.latency_p99_us"]/1000, fmtN(g["fleet.injector_depth"]))
			fmt.Fprintf(&b, "tenants admitted %d  done %d  killed %d  |  breaches %d  respawns %d  migrations %d  steals %d\n",
				c["fleet.admitted"], c["fleet.completed"], c["fleet.killed"],
				c["fleet.breaches"], c["fleet.respawns"], c["fleet.migrations"], c["fleet.steals"])
		} else {
			fmt.Fprintf(&b, "vm      translations x86 %d / arm %d  migrations %d  security events %d  blk-hit %.1f%%\n",
				c["dbt.translations.x86"], c["dbt.translations.arm"],
				c["dbt.migrations"], c["dbt.security_events"],
				100*g["machine.blockcache.hit_ratio"])
		}
		b.WriteByte('\n')
	}

	drew := false
	for _, spec := range f.specs {
		pts := f.history[spec.label()]
		if len(pts) == 0 {
			continue
		}
		last := pts[len(pts)-1].Value
		fmt.Fprintf(&b, "%-28s %s %s\n", spec.label(), sparkline(pts, width), fmtN(last))
		drew = true
	}
	if drew {
		b.WriteByte('\n')
	}

	if il := f.incidents; il != nil {
		fmt.Fprintf(&b, "incidents  open %d  opened %d  resolved %d\n", il.Open, il.Opened, il.Resolved)
		// Open incidents first, then most recent resolved.
		incs := append([]health.IncidentSummary(nil), il.Incidents...)
		sort.SliceStable(incs, func(i, j int) bool {
			if oi, oj := incs[i].State == "open", incs[j].State == "open"; oi != oj {
				return oi
			}
			return incs[i].OpenedNS > incs[j].OpenedNS
		})
		max := 6
		for i, inc := range incs {
			if i >= max {
				fmt.Fprintf(&b, "  … %d more\n", len(incs)-max)
				break
			}
			fmt.Fprintf(&b, "  [%s] #%d %-20s %8s  peak %s  (%s)\n",
				strings.ToUpper(inc.State), inc.ID, inc.Rule,
				(time.Duration(inc.DurationMS) * time.Millisecond).Round(time.Millisecond),
				fmtN(inc.Peak), inc.Condition)
		}
		b.WriteByte('\n')
	}

	if len(f.tenants) > 0 && topN > 0 {
		rows := append([]obsrv.TenantInfo(nil), f.tenants...)
		sort.SliceStable(rows, func(i, j int) bool {
			if ri, rj := rows[i].Fields["respawns"], rows[j].Fields["respawns"]; ri != rj {
				return ri > rj
			}
			return rows[i].Fields["steps"] > rows[j].Fields["steps"]
		})
		if len(rows) > topN {
			rows = rows[:topN]
		}
		fmt.Fprintf(&b, "top tenants (%d of %d, by respawns then steps)\n", len(rows), len(f.tenants))
		fmt.Fprintf(&b, "  %-8s %-12s %-8s %12s %9s %11s\n", "id", "workload", "state", "steps", "respawns", "latency ms")
		for _, t := range rows {
			fmt.Fprintf(&b, "  %-8s %-12s %-8s %12.0f %9.0f %11.1f\n",
				t.ID, t.Workload, t.State,
				t.Fields["steps"], t.Fields["respawns"], t.Fields["latency_us"]/1000)
		}
	}
	return b.String()
}

// fmtN renders a float that is usually an integral count without the
// trailing noise, keeping decimals only when they carry information.
func fmtN(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.2f", v)
}
