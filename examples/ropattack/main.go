// ropattack demonstrates the paper's security story end to end: a victim
// program with a real stack-overflow vulnerability falls to return-into-
// libc and to a multi-gadget ROP chain when unprotected — and survives
// both under PSR and under the full HIPStR defense, across many
// randomization seeds.
package main

import (
	"fmt"
	"log"

	"hipstr"
)

func main() {
	victim, err := hipstr.NewVictim(24)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("victim compiled: %d functions, vulnerable copy into a 4-word stack buffer\n",
		len(victim.Bin.Funcs))

	// Attack 1: classic return-into-libc.
	retlibc := victim.ReturnIntoLibc()
	out, err := victim.AttackNative(retlibc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nreturn-into-libc vs native:   %v\n", out)

	// Attack 2: a ROP chain that establishes register state through pop
	// gadgets before returning into the execve stub.
	chain, steps, err := victim.BuildClassicChain()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("built a %d-gadget chain (%d-word payload):\n", len(steps), len(chain))
	for _, st := range steps {
		fmt.Printf("  %s sets %v\n", st.Gadget.String(), st.Sets)
	}
	out, err = victim.AttackNative(chain)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ROP chain vs native:          %v\n", out)

	// The same payloads against the defenses.
	for _, mode := range []hipstr.Mode{hipstr.ModePSR, hipstr.ModeHIPStR} {
		shells := 0
		var last hipstr.AttackOutcome
		for seed := int64(0); seed < 8; seed++ {
			cfg := hipstr.Defaults()
			cfg.Mode = mode
			cfg.DBT.Seed = seed
			o, _, err := victim.AttackProtected(cfg, chain)
			if err != nil {
				log.Fatal(err)
			}
			if o == hipstr.OutcomeShell {
				shells++
			}
			last = o
		}
		fmt.Printf("ROP chain vs %-6v (8 seeds): %d shells (typical outcome: %v)\n",
			mode, shells, last)
	}

	// Even spraying the whole protocol budget with the stub address fails:
	// the relocated return slot lies beyond the overflow's reach.
	spray := victim.SprayPayload(1024)
	cfg := hipstr.Defaults()
	cfg.DBT.Seed = 3
	o, sys, err := victim.AttackProtected(cfg, spray)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("4 KiB spray vs HIPStR:        %v (security events: %d)\n",
		o, sys.SecurityEvents())
}
