package dbt

import (
	"sync"

	"hipstr/internal/isa"
)

// UnitCache is the process-wide content-addressed translation cache: a
// concurrent map from everything that can influence a translation unit's
// bytes to the immutable finished unit. In a fleet most guests run the
// same binaries, so the Nth VM to need a unit installs the shared copy
// (memcpy + metadata replay) instead of re-running the translator — the
// dominant cost of spawn, respawn, and cache-churn regimes (PR 4).
//
// Correctness rests on the key capturing *all* translation inputs:
//
//   - bin: fatbin.Binary.ContentHash — source bytes and symbol table.
//   - k/src: target ISA and source address of the unit.
//   - layout: the PSR layout class — randomizer seed, the psr-relevant
//     config (OptLevel, RandPages), and the VM's map-build digest. The
//     randomizer is a sequential RNG, so two VMs have identical relocation
//     maps i-f-f they share a seed AND built their maps in the same order;
//     the digest folds that order.
//   - env: code-cache geometry and content — cache size, the unit's base
//     address (translated code is position-dependent), and the cache's
//     chain digest (emitChain/emitDirectCall branch straight to targets
//     that are already warm, so emitted bytes depend on exactly which
//     units were committed, in order, since the last flush).
//
// Hits replay every side effect of a cold translation — map builds (which
// advance the shared RNG stream), cache-lookup counter deltas, trap/call
// registration, covered ranges — so a VM that hits is byte- and
// stats-identical to one that translated. That equivalence is what keeps
// experiment tables deterministic with a process-global cache shared
// across concurrently running cells.
type UnitCache struct {
	mu      sync.Mutex
	entries map[unitKey]*unitEntry
	fifo    []unitKey
	bytes   uint64
	cap     uint64

	hits, misses, installs, bytesSaved uint64
}

// unitKey identifies one translation unit by its full input set.
type unitKey struct {
	bin    uint64
	k      isa.Kind
	src    uint32
	layout uint64
	env    uint64
}

// unitEntry is one immutable finished translation unit plus everything
// needed to replay the translator's side effects on install.
type unitEntry struct {
	code    []byte
	stubOff uint32 // deferred trap-stub region start, relative to unit base
	traps   []unitTrap
	calls   []unitCall
	covered [][2]uint32
	// mapBuilds lists the functions (by symbol-table index) whose
	// relocation maps the translator built, in order. Installing VMs
	// replay them so their PSR RNG stream advances exactly as the
	// publisher's did.
	mapBuilds []int
	// lookupDelta/hitDelta are the code-cache Lookup counter effects of
	// the translator's warm-target probes, replayed for stats parity.
	lookupDelta, hitDelta uint64
}

type unitTrap struct {
	off      uint32 // trap site, relative to unit base
	patchOff uint32 // patch site, relative to unit base (chain traps)
	hasPatch bool
	meta     trapMeta // gen and patchAddr are filled at install time
}

type unitCall struct {
	off    uint32
	srcRet uint32
}

// DefaultUnitCacheBytes bounds the default shared cache's code bytes.
const DefaultUnitCacheBytes = 64 << 20

// SharedUnits is the process-wide default cache. Config.SharedUnits
// overrides it per VM; Config.NoSharedUnits opts a VM out entirely.
var SharedUnits = NewUnitCache(DefaultUnitCacheBytes)

// NewUnitCache returns an empty cache bounded to capBytes of unit code
// (oldest entries evict first).
func NewUnitCache(capBytes uint64) *UnitCache {
	return &UnitCache{entries: make(map[unitKey]*unitEntry), cap: capBytes}
}

// UnitCacheStats is a point-in-time snapshot of the cache's counters.
type UnitCacheStats struct {
	Hits       uint64 // translations served from the shared cache
	Misses     uint64 // consultations that found nothing
	Installs   uint64 // units published into the cache
	BytesSaved uint64 // code bytes whose re-translation a hit avoided
	Entries    int
	Bytes      uint64 // code bytes currently held
}

// Stats returns the cache's counters.
func (u *UnitCache) Stats() UnitCacheStats {
	u.mu.Lock()
	defer u.mu.Unlock()
	return UnitCacheStats{
		Hits: u.hits, Misses: u.misses, Installs: u.installs,
		BytesSaved: u.bytesSaved, Entries: len(u.entries), Bytes: u.bytes,
	}
}

// lookup returns the unit for key, counting the hit or miss.
func (u *UnitCache) lookup(key unitKey) *unitEntry {
	u.mu.Lock()
	defer u.mu.Unlock()
	e := u.entries[key]
	if e == nil {
		u.misses++
		return nil
	}
	u.hits++
	u.bytesSaved += uint64(len(e.code))
	return e
}

// publish stores a finished unit, evicting oldest entries past capacity.
// First publisher wins; a racing duplicate (two VMs translating the same
// unit concurrently) is dropped — entries are interchangeable by
// construction.
func (u *UnitCache) publish(key unitKey, e *unitEntry) {
	u.mu.Lock()
	defer u.mu.Unlock()
	if _, dup := u.entries[key]; dup {
		return
	}
	u.entries[key] = e
	u.fifo = append(u.fifo, key)
	u.bytes += uint64(len(e.code))
	u.installs++
	for u.bytes > u.cap && len(u.fifo) > 0 {
		old := u.fifo[0]
		u.fifo = u.fifo[1:]
		if oe, ok := u.entries[old]; ok {
			u.bytes -= uint64(len(oe.code))
			delete(u.entries, old)
		}
	}
}

// digestInit/foldDigest implement the running FNV-1a folds used for the
// map-build and chain digests and for packing the key's layout/env words.
const digestInit uint64 = 0xcbf29ce484222325

func foldDigest(h, v uint64) uint64 {
	for i := 0; i < 64; i += 8 {
		h ^= (v >> i) & 0xff
		h *= 0x100000001b3
	}
	return h
}

// installShared commits a shared unit into this VM's code cache and
// replays every side effect a cold translation would have had: map builds
// (advancing the PSR RNG stream identically), warm-target lookup counter
// deltas, trap and call registration, covered source ranges, and the
// translation counter. After install the VM is indistinguishable from one
// that ran the translator — that equivalence keeps experiment tables
// deterministic no matter which VM populated the cache first.
func (vm *VM) installShared(k isa.Kind, src uint32, u *unitEntry) (uint32, bool) {
	c := vm.caches[k]
	addr, ok := c.Reserve(uint32(len(u.code)), vm.unitAlign())
	if !ok {
		return 0, false
	}
	c.Commit(vm.P.Mem, src, addr, u.code)
	c.AddCovered(u.covered)
	c.SetStubStart(addr + u.stubOff)
	for _, idx := range u.mapBuilds {
		vm.mapOf(vm.Bin.Funcs[idx])
	}
	c.Lookups += u.lookupDelta
	c.Hits += u.hitDelta
	vm.Stats.Translations[k]++
	for _, ut := range u.traps {
		meta := ut.meta
		meta.gen = vm.gen[k]
		if ut.hasPatch {
			meta.patchAddr = addr + ut.patchOff
		}
		vm.traps[k][addr+ut.off] = meta
	}
	for _, uc := range u.calls {
		vm.calls[k][addr+uc.off] = callMeta{srcRet: uc.srcRet, gen: vm.gen[k]}
	}
	return addr, true
}

// publishShared packages a just-committed translation into an immutable
// entry under the key computed before the translator ran. mapN and
// lk0/ht0 are the map-order length and cache Lookup counters captured at
// that same point; the differences are the side effects installs replay.
func (vm *VM) publishShared(key unitKey, addr uint32, code []byte, labels map[string]uint32, t *translator, mapN int, lk0, ht0 uint64) {
	c := vm.caches[t.k]
	e := &unitEntry{
		code:        append([]byte(nil), code...),
		stubOff:     labels[stubsLabel] - addr,
		covered:     append([][2]uint32(nil), t.srcRanges()...),
		mapBuilds:   append([]int(nil), vm.mapOrder[mapN:]...),
		lookupDelta: c.Lookups - lk0,
		hitDelta:    c.Hits - ht0,
	}
	for _, pt := range t.newTraps {
		ut := unitTrap{off: labels[pt.label] - addr, meta: pt.meta}
		if pt.patchLabel != "" {
			ut.patchOff = labels[pt.patchLabel] - addr
			ut.hasPatch = true
		}
		e.traps = append(e.traps, ut)
	}
	for _, pc := range t.newCalls {
		e.calls = append(e.calls, unitCall{off: labels[pc.label] - addr, srcRet: pc.srcRet})
	}
	vm.shared.publish(key, e)
	vm.Stats.SharedInstalls++
}

// unitKeyFor computes the content-addressed key for translating src on ISA
// k at cache address base under the VM's current layout and cache state.
func (vm *VM) unitKeyFor(k isa.Kind, src, base uint32) unitKey {
	layout := foldDigest(digestInit, uint64(vm.layoutSeed))
	layout = foldDigest(layout, uint64(vm.Cfg.Opt)|uint64(vm.Cfg.RandPages)<<8)
	layout = foldDigest(layout, vm.mapDigest)
	env := foldDigest(digestInit, uint64(vm.Cfg.CodeCacheSize))
	env = foldDigest(env, uint64(base))
	env = foldDigest(env, vm.caches[k].chain)
	return unitKey{bin: vm.Bin.ContentHash(), k: k, src: src, layout: layout, env: env}
}
