// Command hipstr-run executes a benchmark natively or under the PSR /
// HIPStR virtual machines and reports execution statistics.
package main

import (
	"flag"
	"fmt"
	"log"

	"hipstr"
)

func main() {
	name := flag.String("workload", "libquantum", "benchmark to run")
	mode := flag.String("mode", "hipstr", "native | psr | hipstr")
	steps := flag.Uint64("steps", 50_000_000, "instruction budget")
	seed := flag.Int64("seed", 1, "randomization seed")
	flag.Parse()

	bin, err := hipstr.CompileWorkload(*name)
	if err != nil {
		log.Fatal(err)
	}
	switch *mode {
	case "native":
		p, err := hipstr.RunNative(bin, hipstr.X86)
		if err != nil {
			log.Fatal(err)
		}
		n, err := p.Run(*steps)
		fmt.Printf("native: %d instructions, exited=%v code=%d writes=%d err=%v\n",
			n, p.Exited, p.ExitCode, len(p.Trace), err)
	case "psr", "hipstr":
		cfg := hipstr.Defaults()
		cfg.DBT.Seed = *seed
		if *mode == "psr" {
			cfg.Mode = hipstr.ModePSR
		}
		s, err := hipstr.Protect(bin, cfg)
		if err != nil {
			log.Fatal(err)
		}
		n, err := s.Run(*steps)
		fmt.Printf("%s: %d instructions, exited=%v code=%d err=%v\n",
			*mode, n, s.Exited(), s.ExitCode(), err)
		st := s.VM.Stats
		fmt.Printf("  translations x86=%d arm=%d, indirect dispatches=%d\n",
			st.Translations[hipstr.X86], st.Translations[hipstr.ARM], st.IndirectDispatch)
		fmt.Printf("  security events=%d, migrations=%d, kills=%d, flushes=%d\n",
			st.SecurityEvents, st.Migrations, st.Kills, st.Flushes)
		rat := s.VM.RATOf(s.Active())
		fmt.Printf("  RAT: %d lookups, %d misses (active core: %s)\n",
			rat.Lookups, rat.Misses, s.Active())
	default:
		log.Fatalf("unknown mode %q", *mode)
	}
}
