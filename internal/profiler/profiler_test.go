package profiler_test

import (
	"regexp"
	"sort"
	"strings"
	"testing"

	"hipstr/internal/compiler"
	"hipstr/internal/dbt"
	"hipstr/internal/fatbin"
	"hipstr/internal/isa"
	"hipstr/internal/perf"
	"hipstr/internal/proc"
	"hipstr/internal/profiler"
	"hipstr/internal/telemetry"
	"hipstr/internal/testprogs"
)

const maxSteps = 20_000_000

func compile(t *testing.T, name string) *fatbin.Binary {
	t.Helper()
	tc, ok := testprogs.All()[name]
	if !ok {
		t.Fatalf("unknown test program %q", name)
	}
	bin, err := compiler.Compile(tc.Mod)
	if err != nil {
		t.Fatalf("compile %s: %v", name, err)
	}
	return bin
}

// TestNativeAttribution runs a native process with the timing model bound
// and checks the acceptance bar: at least 90% of simulated cycles land on
// symbolized guest functions, and per-function costs add up to the total.
func TestNativeAttribution(t *testing.T) {
	bin := compile(t, "nested")
	for _, k := range isa.Kinds {
		p, err := proc.New(bin, k)
		if err != nil {
			t.Fatal(err)
		}
		model := perf.NewModel(perf.CoreFor(k))
		model.Attach(p.M)
		prof := profiler.New(bin, 8)
		prof.BindModel(model)
		prof.Attach(p.M)
		if err := p.RunToExit(maxSteps); err != nil {
			t.Fatalf("%s: %v", k, err)
		}
		rep := prof.Report()
		if rep.Samples == 0 {
			t.Fatalf("%s: no samples", k)
		}
		if rep.AttributedRatio < 0.9 {
			t.Errorf("%s: attributed ratio %.3f < 0.9", k, rep.AttributedRatio)
		}
		if len(rep.Funcs) == 0 || rep.Funcs[0].Func == "(unknown)" {
			t.Errorf("%s: hottest function unsymbolized: %+v", k, rep.Funcs)
		}
		var sum float64
		for _, f := range rep.Funcs {
			sum += f.Cycles
		}
		if diff := sum - rep.TotalCycles; diff > 1e-6 || diff < -1e-6 {
			t.Errorf("%s: func cycles %.2f != total %.2f", k, sum, rep.TotalCycles)
		}
		if rep.TotalCycles < float64(rep.Instructions)/4 {
			t.Errorf("%s: %.0f cycles for %d instructions looks unbound from the model",
				k, rep.TotalCycles, rep.Instructions)
		}
	}
}

// TestVMResolverAttribution runs the PSR VM with the profiler resolving
// code cache PCs back to guest source addresses: attribution must clear
// 90% even though every sampled PC lives in a translation unit.
func TestVMResolverAttribution(t *testing.T) {
	bin := compile(t, "nested")
	cfg := dbt.DefaultConfig()
	cfg.MigrateProb = 0
	vm, err := dbt.New(bin, isa.X86, cfg)
	if err != nil {
		t.Fatal(err)
	}
	prof := profiler.New(bin, 8)
	prof.SetResolver(vm.ResolvePC)
	prof.Attach(vm.P.M)
	if _, err := vm.Run(maxSteps); err != nil {
		t.Fatal(err)
	}
	if !vm.P.Exited {
		t.Fatal("program did not exit under the PSR VM")
	}
	rep := prof.Report()
	if rep.Samples == 0 {
		t.Fatal("no samples")
	}
	if rep.AttributedRatio < 0.9 {
		t.Errorf("attributed ratio %.3f < 0.9 (cache PCs not resolving)", rep.AttributedRatio)
	}
	if len(rep.Funcs) == 0 || rep.Funcs[0].Func == "(unknown)" {
		t.Errorf("hottest function unsymbolized: %+v", rep.Funcs)
	}
}

// TestInstructionCountFallback pins the no-model contract: every sampled
// instruction costs exactly one cycle, so totals equal sampled counts.
func TestInstructionCountFallback(t *testing.T) {
	bin := compile(t, "sumloop")
	p, err := proc.New(bin, isa.ARM)
	if err != nil {
		t.Fatal(err)
	}
	prof := profiler.New(bin, 16)
	prof.Attach(p.M)
	if err := p.RunToExit(maxSteps); err != nil {
		t.Fatal(err)
	}
	rep := prof.Report()
	if rep.Samples == 0 {
		t.Fatal("no samples")
	}
	if rep.TotalCycles != float64(rep.Instructions) {
		t.Errorf("total %.0f != sampled instructions %d", rep.TotalCycles, rep.Instructions)
	}
	if rep.Instructions != rep.Samples*prof.Interval() {
		t.Errorf("instructions %d != samples %d * interval %d",
			rep.Instructions, rep.Samples, prof.Interval())
	}
}

var foldedLine = regexp.MustCompile(
	`^(interpret;[^;]+;(x86|arm);block(\d+|\?)|translate;[^;]+;(x86|arm)|migrate;\(migration\);(x86|arm)) \d+$`)

// TestFoldedOutput checks the folded stacks parse in the flamegraph
// "frames weight" format tracestat emits, sorted and with positive weights.
func TestFoldedOutput(t *testing.T) {
	bin := compile(t, "fib")
	p, err := proc.New(bin, isa.X86)
	if err != nil {
		t.Fatal(err)
	}
	prof := profiler.New(bin, 4)
	prof.Attach(p.M)
	if err := p.RunToExit(maxSteps); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := prof.Report().WriteFolded(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
	if len(lines) == 0 || lines[0] == "" {
		t.Fatal("no folded output")
	}
	for _, l := range lines {
		if !foldedLine.MatchString(l) {
			t.Errorf("malformed folded line %q", l)
		}
	}
	if !sort.StringsAreSorted(lines) {
		t.Error("folded stacks not sorted")
	}
}

// TestPhaseAccounting feeds tracer events straight into the profiler's
// sink and checks translate/migrate costs surface as phases with their
// microsecond weights, keyed to the function owning the translated block.
func TestPhaseAccounting(t *testing.T) {
	bin := compile(t, "fib")
	prof := profiler.New(bin, 64)
	entry := bin.Funcs[0].Entry[isa.X86]
	prof.Emit(telemetry.Event{Type: telemetry.EvTranslate, ISA: "x86", Addr: entry, Cost: 12.5})
	prof.Emit(telemetry.Event{Type: telemetry.EvTranslate, ISA: "x86", Addr: entry, Cost: 2.5})
	prof.Emit(telemetry.Event{Type: telemetry.EvMigrateEnd, ISA: "arm", Cost: 40})
	prof.Emit(telemetry.Event{Type: telemetry.EvMigrateEnd, ISA: "arm", Cost: 0}) // refused: no cost
	rep := prof.Report()
	if len(rep.Phases) != 2 {
		t.Fatalf("got %d phases, want 2: %+v", len(rep.Phases), rep.Phases)
	}
	mig, tr := rep.Phases[0], rep.Phases[1]
	if mig.Phase != "migrate" || mig.ISA != "arm" || mig.Count != 1 || mig.CostUS != 40 {
		t.Errorf("migrate phase wrong: %+v", mig)
	}
	if tr.Phase != "translate" || tr.Func != bin.Funcs[0].Name || tr.Count != 2 || tr.CostUS != 15 {
		t.Errorf("translate phase wrong: %+v", tr)
	}
	var b strings.Builder
	if err := rep.WriteFolded(&b); err != nil {
		t.Fatal(err)
	}
	want := "migrate;(migration);arm 40\ntranslate;" + bin.Funcs[0].Name + ";x86 15\n"
	if b.String() != want {
		t.Errorf("folded phases:\n%q\nwant:\n%q", b.String(), want)
	}
}

// TestTelemetryBinding checks the profiler's collector publishes sample
// meters and the attribution ratio through a registry snapshot.
func TestTelemetryBinding(t *testing.T) {
	bin := compile(t, "sumloop")
	p, err := proc.New(bin, isa.X86)
	if err != nil {
		t.Fatal(err)
	}
	prof := profiler.New(bin, 16)
	prof.Attach(p.M)
	tel := telemetry.New()
	prof.BindTelemetry(tel)
	if err := p.RunToExit(maxSteps); err != nil {
		t.Fatal(err)
	}
	snap := tel.Snapshot()
	if snap.Counters["profiler.samples"] == 0 {
		t.Error("profiler.samples not published")
	}
	if snap.Counters["profiler.instructions"] == 0 {
		t.Error("profiler.instructions not published")
	}
	if r := snap.Gauges["profiler.attributed_ratio"]; r < 0.9 || r > 1 {
		t.Errorf("profiler.attributed_ratio = %v", r)
	}
}
